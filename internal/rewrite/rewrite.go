// Package rewrite defines the common interface and result type shared by the
// program rewriting algorithms of the paper (generalized magic sets,
// generalized supplementary magic sets, generalized counting and generalized
// supplementary counting), together with helpers used by all of them.
//
// Every rewriter consumes an adorned program (package adorn) and produces a
// new program plus a seed fact derived from the query; evaluating the
// rewritten program bottom-up over the database extended with the seed
// computes exactly the facts relevant to the query under the chosen sip
// collection.
package rewrite

import (
	"fmt"
	"strings"

	"repro/internal/adorn"
	"repro/internal/ast"
)

// Rewriting is the output of a rewriting algorithm.
type Rewriting struct {
	// Name identifies the algorithm that produced the rewriting (e.g.
	// "generalized-magic-sets").
	Name string
	// Program contains the rewritten rules, ready for bottom-up evaluation.
	Program *ast.Program
	// Seeds are the seed facts obtained from the query (magic_q^a(c̄) or
	// cnt_q_ind^a(0,0,0,c̄)); they must be added to the database before
	// evaluation.
	Seeds []ast.Atom
	// AnswerPred is the predicate key of the relation holding the query
	// answers after evaluation (e.g. "anc^bf" or "anc_ind^bf").
	AnswerPred string
	// AnswerPattern is the atom to use with eval.Answers to read the query's
	// answers out of the evaluated store: its ground arguments select the
	// relevant tuples (query constants, and the (0,0,0) index triple for the
	// counting rewritings) and its variables mark the projected positions.
	AnswerPattern ast.Atom
	// AnswerIndexArgs is the number of leading index arguments of the answer
	// predicate that are not part of the original predicate's arguments
	// (3 for the counting rewritings, 0 otherwise). Callers must skip these
	// when projecting answers.
	AnswerIndexArgs int
	// AnswerArity is the arity of the answer predicate in the rewritten
	// program (original arity plus index arguments minus any arguments
	// removed by the semijoin optimization).
	AnswerArity int
	// DroppedAnswerBound reports that the bound arguments of the answer
	// predicate were removed by the semijoin optimization (Theorem 8.3); the
	// remaining non-index arguments correspond to the free positions of the
	// query only.
	DroppedAnswerBound bool
	// SeedBoundArgs lists, for each seed in Seeds, the argument positions
	// that hold the query's bound constants, in Query.BoundConstants()
	// order. Every other seed argument is a form constant — part of the
	// query's binding pattern rather than its constants (for example the
	// (0, 0, 0) index triple of the counting seed). Together with
	// AnswerBoundArgs it is the schema Parameterize uses to re-instantiate a
	// rewriting for new constants of the same query form.
	SeedBoundArgs [][]int
	// AnswerBoundArgs lists, in Query.BoundConstants() order, the position
	// of each bound query constant within AnswerPattern.Args, or -1 for a
	// constant whose argument the semijoin optimization removed from the
	// answer predicate.
	AnswerBoundArgs []int
	// Adorned is the adorned program the rewriting was built from.
	Adorned *adorn.Program
	// AuxPredicates lists the auxiliary predicate keys introduced by the
	// rewriting (magic_, sup_, cnt_, supcnt_ predicates).
	AuxPredicates map[string]bool
}

// String renders the rewritten rules followed by the seeds, in a stable
// format used by the golden tests that reproduce the paper's appendix.
func (r *Rewriting) String() string {
	var b strings.Builder
	for _, rule := range r.Program.Rules {
		b.WriteString(rule.String())
		b.WriteByte('\n')
	}
	for _, seed := range r.Seeds {
		fmt.Fprintf(&b, "%s.\n", seed)
	}
	return b.String()
}

// Parameterize re-instantiates the rewriting for a query of the same form —
// same predicate, binding pattern, sip and rewriting options — whose bound
// constants are bound, in Query.BoundConstants() order. It returns the seed
// facts and the answer-selection pattern for the new constants; the
// rewritten program itself is form-invariant (the query's constants occur
// only in the seeds and the answer selection), which is what lets a serving
// layer compile it once and evaluate it per call.
func (r *Rewriting) Parameterize(bound []ast.Term) (seeds []ast.Atom, answer ast.Atom, err error) {
	if len(r.SeedBoundArgs) != len(r.Seeds) {
		return nil, ast.Atom{}, fmt.Errorf("rewrite: rewriting %s carries no parameterization schema", r.Name)
	}
	want := 0
	for _, positions := range r.SeedBoundArgs {
		if len(positions) > want {
			want = len(positions)
		}
	}
	if len(r.AnswerBoundArgs) > want {
		want = len(r.AnswerBoundArgs)
	}
	if len(bound) != want {
		return nil, ast.Atom{}, fmt.Errorf("rewrite: query form has %d bound constants, got %d", want, len(bound))
	}
	for i, t := range bound {
		if !ast.IsGround(t) {
			return nil, ast.Atom{}, fmt.Errorf("rewrite: bound constant %d (%s) is not ground", i, t)
		}
	}
	seeds = make([]ast.Atom, len(r.Seeds))
	for i, seed := range r.Seeds {
		args := append([]ast.Term(nil), seed.Args...)
		for k, pos := range r.SeedBoundArgs[i] {
			args[pos] = bound[k]
		}
		seeds[i] = ast.Atom{Pred: seed.Pred, Adorn: seed.Adorn, Args: args}
	}
	pargs := append([]ast.Term(nil), r.AnswerPattern.Args...)
	for k, pos := range r.AnswerBoundArgs {
		if pos >= 0 {
			pargs[pos] = bound[k]
		}
	}
	answer = ast.Atom{Pred: r.AnswerPattern.Pred, Adorn: r.AnswerPattern.Adorn, Args: pargs}
	return seeds, answer, nil
}

// QueryBoundPositions returns the positions of the ground (bound) arguments
// of the adorned program's query atom, in order — the positions
// Parameterize's bound constants correspond to.
func QueryBoundPositions(ad *adorn.Program) []int {
	var out []int
	for i, arg := range ad.Query.Atom.Args {
		if ast.IsGround(arg) {
			out = append(out, i)
		}
	}
	return out
}

// Rewriter transforms an adorned program into an equivalent program whose
// bottom-up evaluation implements the sip collection attached to the adorned
// program.
type Rewriter interface {
	// Rewrite performs the transformation.
	Rewrite(ad *adorn.Program) (*Rewriting, error)
	// Name identifies the algorithm.
	Name() string
}

// MagicAtom returns the magic predicate occurrence for an adorned atom: the
// predicate magic_p^a whose arguments are the bound arguments of the atom.
// It returns a zero-arity atom when the adornment has no bound positions;
// callers normally skip creating magic predicates in that case.
func MagicAtom(a ast.Atom) ast.Atom {
	return ast.Atom{
		Pred:  "magic_" + a.Pred,
		Adorn: a.Adorn,
		Args:  a.BoundArgs(),
	}
}

// SeedAtom builds the seed fact for the query of an adorned program: the
// magic predicate of the adorned query predicate applied to the query's
// bound constants.
func SeedAtom(ad *adorn.Program) ast.Atom {
	return ast.Atom{
		Pred:  "magic_" + ad.Query.Atom.Pred,
		Adorn: ad.QueryAdornment,
		Args:  ad.Query.BoundConstants(),
	}
}

// HeadMagicAtom returns the magic literal for the head of an adorned rule:
// magic_p^a over the bound head arguments.
func HeadMagicAtom(r ast.Rule) ast.Atom { return MagicAtom(r.Head) }

// IsDerivedOccurrence reports whether a body occurrence refers to a derived
// predicate of the original program (the occurrence carries an adornment or
// its unadorned name is a derived predicate).
func IsDerivedOccurrence(ad *adorn.Program, a ast.Atom) bool {
	return ad.OriginalDerived[a.Pred]
}

// ValidateAdorned performs the sanity checks shared by all rewriters.
func ValidateAdorned(ad *adorn.Program) error {
	if ad == nil {
		return fmt.Errorf("rewrite: nil adorned program")
	}
	if len(ad.Rules) == 0 {
		return fmt.Errorf("rewrite: adorned program has no rules")
	}
	for i, r := range ad.Rules {
		if r.Sip == nil {
			return fmt.Errorf("rewrite: adorned rule %d (%s) has no sip attached", i, r.Rule)
		}
		if len(r.Sip.HeadAdornment) != len(r.Rule.Head.Args) {
			return fmt.Errorf("rewrite: adorned rule %d (%s): sip head adornment %q does not match", i, r.Rule, r.Sip.HeadAdornment)
		}
	}
	return nil
}
