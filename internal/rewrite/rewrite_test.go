package rewrite

import (
	"strings"
	"testing"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/sip"
)

func adorned(t *testing.T, src, query string) *adorn.Program {
	t.Helper()
	ad, err := adorn.Adorn(parser.MustParseProgram(src), parser.MustParseQuery(query), sip.FullLeftToRight())
	if err != nil {
		t.Fatal(err)
	}
	return ad
}

func TestMagicAtom(t *testing.T) {
	a := ast.NewAdornedAtom("sg", "bf", ast.V("X"), ast.V("Y"))
	m := MagicAtom(a)
	if m.Pred != "magic_sg" || m.Adorn != "bf" || len(m.Args) != 1 || m.Args[0].String() != "X" {
		t.Errorf("MagicAtom = %s", m)
	}
	// All-free adornment yields a zero-arity magic atom.
	free := ast.NewAdornedAtom("p", "ff", ast.V("X"), ast.V("Y"))
	if got := MagicAtom(free); len(got.Args) != 0 {
		t.Errorf("MagicAtom(ff) = %s", got)
	}
	// Multiple bound arguments keep their order.
	multi := ast.NewAdornedAtom("append", "bbf", ast.V("V"), ast.V("X"), ast.V("Y"))
	if got := MagicAtom(multi); got.String() != "magic_append^bbf(V, X)" {
		t.Errorf("MagicAtom(bbf) = %s", got)
	}
}

func TestSeedAndHeadMagicAtom(t *testing.T) {
	ad := adorned(t, `
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
	`, "anc(john, Y)")
	seed := SeedAtom(ad)
	if seed.String() != "magic_anc^bf(john)" {
		t.Errorf("seed = %s", seed)
	}
	head := HeadMagicAtom(ad.Rules[1].Rule)
	if head.String() != "magic_anc^bf(X)" {
		t.Errorf("head magic = %s", head)
	}
}

func TestIsDerivedOccurrence(t *testing.T) {
	ad := adorned(t, `
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
	`, "p(a, Y)")
	rule := ad.Rules[1].Rule
	if IsDerivedOccurrence(ad, rule.Body[0]) {
		t.Error("e is a base predicate")
	}
	if !IsDerivedOccurrence(ad, rule.Body[1]) {
		t.Error("p is a derived predicate")
	}
}

func TestValidateAdorned(t *testing.T) {
	if err := ValidateAdorned(nil); err == nil {
		t.Error("nil program must be rejected")
	}
	if err := ValidateAdorned(&adorn.Program{}); err == nil {
		t.Error("empty program must be rejected")
	}
	good := adorned(t, "p(X, Y) :- e(X, Y).", "p(a, Y)")
	if err := ValidateAdorned(good); err != nil {
		t.Errorf("valid adorned program rejected: %v", err)
	}
	// Rule without a sip.
	noSip := &adorn.Program{Rules: []adorn.Rule{{Rule: good.Rules[0].Rule}}}
	if err := ValidateAdorned(noSip); err == nil {
		t.Error("rule without sip must be rejected")
	}
	// Sip whose head adornment does not match the rule head.
	bad := adorned(t, "p(X, Y) :- e(X, Y).", "p(a, Y)")
	bad.Rules[0].Sip = &sip.Graph{Rule: bad.Rules[0].Rule, HeadAdornment: "b"}
	if err := ValidateAdorned(bad); err == nil {
		t.Error("mismatched sip adornment must be rejected")
	}
}

func TestRewritingString(t *testing.T) {
	r := &Rewriting{
		Program: ast.NewProgram(
			ast.NewRule(ast.NewAtom("p", ast.V("X")), ast.NewAtom("magic_p", ast.V("X")), ast.NewAtom("e", ast.V("X"))),
		),
		Seeds: []ast.Atom{ast.NewAtom("magic_p", ast.S("a"))},
	}
	out := r.String()
	if !strings.Contains(out, "p(X) :- magic_p(X), e(X).") || !strings.Contains(out, "magic_p(a).") {
		t.Errorf("rendering = %q", out)
	}
}
