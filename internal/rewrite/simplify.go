package rewrite

import (
	"repro/internal/ast"
)

// Simplify removes obviously redundant rules from a rewritten program:
//
//   - tautological rules whose body is exactly their head (for example the
//     magic_a^bf(X) :- magic_a^bf(X) rule the nonlinear-ancestor rewriting
//     produces, which the paper notes "can be deleted"), and
//   - exact duplicate rules (the same rule can be generated from two
//     different body occurrences).
//
// The rewriting is modified in place and also returned for chaining. The
// transformation never changes the computed relations: a tautological rule
// can only re-derive an existing fact, and duplicate rules derive what their
// first copy derives.
func Simplify(r *Rewriting) *Rewriting {
	if r == nil || r.Program == nil {
		return r
	}
	seen := make(map[string]bool)
	var rules []ast.Rule
	for _, rule := range r.Program.Rules {
		if isTautology(rule) {
			continue
		}
		key := rule.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		rules = append(rules, rule)
	}
	r.Program = ast.NewProgram(rules...)
	return r
}

// isTautology reports whether the rule's body consists of a single literal
// identical to its head.
func isTautology(r ast.Rule) bool {
	return len(r.Body) == 1 && ast.EqualAtoms(r.Head, r.Body[0])
}
