package rewrite

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestSimplifyRemovesTautologiesAndDuplicates(t *testing.T) {
	taut := ast.NewRule(
		ast.NewAdornedAtom("magic_a", "bf", ast.V("X")),
		ast.NewAdornedAtom("magic_a", "bf", ast.V("X")),
	)
	real1 := ast.NewRule(
		ast.NewAdornedAtom("magic_a", "bf", ast.V("Z")),
		ast.NewAdornedAtom("magic_a", "bf", ast.V("X")),
		ast.NewAtom("p", ast.V("X"), ast.V("Z")),
	)
	r := &Rewriting{Program: ast.NewProgram(taut, real1, real1.Clone())}
	Simplify(r)
	if len(r.Program.Rules) != 1 {
		t.Fatalf("expected a single rule after simplification, got:\n%s", r.Program)
	}
	if !strings.Contains(r.Program.Rules[0].String(), "p(X, Z)") {
		t.Errorf("the real rule should survive: %s", r.Program.Rules[0])
	}
}

func TestSimplifyKeepsNonTrivialSelfReferences(t *testing.T) {
	// A rule whose head predicate appears in the body but with different
	// arguments is not a tautology and must be kept.
	rec := ast.NewRule(
		ast.NewAtom("a", ast.V("X"), ast.V("Y")),
		ast.NewAtom("a", ast.V("X"), ast.V("Z")),
		ast.NewAtom("a", ast.V("Z"), ast.V("Y")),
	)
	r := &Rewriting{Program: ast.NewProgram(rec)}
	Simplify(r)
	if len(r.Program.Rules) != 1 {
		t.Errorf("recursive rule must be kept:\n%s", r.Program)
	}
	// Nil-safety.
	if Simplify(nil) != nil {
		t.Error("Simplify(nil) should return nil")
	}
	if out := Simplify(&Rewriting{}); out == nil || out.Program != nil {
		t.Error("Simplify on an empty rewriting should be a no-op")
	}
}
