// Package supmagic implements the generalized supplementary magic-sets
// rewriting (GSMS, Section 5 of Beeri & Ramakrishnan, "On the Power of
// Magic").
//
// GSMS addresses the duplicate work of plain generalized magic sets: the
// joins computed while deriving magic facts are re-computed by the modified
// rules. Supplementary magic predicates sup_r_i store the intermediate join
// results (the bindings accumulated after solving the first i-1 body
// literals of rule r), the magic rules read them off directly, and the
// modified rule restarts from the last supplementary predicate instead of
// re-joining the prefix.
//
// The standard simplification is always applied: the first supplementary
// predicate, which would merely copy magic_p^a, is eliminated and its
// occurrences are replaced by magic_p^a itself (as done throughout the
// paper's Appendix A.4).
package supmagic

import (
	"fmt"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/rewrite"
	"repro/internal/sip"
)

// Options configure the generalized supplementary magic-sets rewriting.
type Options struct {
	// KeepUnusedVariables disables the projection optimization that drops
	// from each supplementary predicate the variables not needed by later
	// body literals or by the rule head. It exists for ablation experiments.
	KeepUnusedVariables bool
}

// Rewriter is the generalized supplementary magic-sets rewriter.
type Rewriter struct {
	opts Options
}

// New returns a GSMS rewriter with the given options.
func New(opts Options) *Rewriter { return &Rewriter{opts: opts} }

// Name implements rewrite.Rewriter.
func (rw *Rewriter) Name() string { return "generalized-supplementary-magic-sets" }

// Rewrite implements rewrite.Rewriter.
func (rw *Rewriter) Rewrite(ad *adorn.Program) (*rewrite.Rewriting, error) {
	if err := rewrite.ValidateAdorned(ad); err != nil {
		return nil, err
	}
	out := &rewrite.Rewriting{
		Name:            rw.Name(),
		Adorned:         ad,
		AnswerPred:      ad.QueryPred,
		AnswerPattern:   ast.Atom{Pred: ad.Query.Atom.Pred, Adorn: ad.QueryAdornment, Args: ad.Query.Atom.Args},
		AnswerArity:     len(ad.Query.Atom.Args),
		AnswerIndexArgs: 0,
		AuxPredicates:   make(map[string]bool),
	}

	var supRules, modifiedRules, magicRules []ast.Rule
	for ruleIdx, ar := range ad.Rules {
		s, m, mod, err := rw.rewriteRule(ad, ruleIdx, ar)
		if err != nil {
			return nil, err
		}
		supRules = append(supRules, s...)
		magicRules = append(magicRules, m...)
		modifiedRules = append(modifiedRules, mod)
	}

	rules := append(append(supRules, modifiedRules...), magicRules...)
	out.Program = ast.NewProgram(rules...)
	for _, r := range rules {
		if isAux(r.Head.Pred) {
			out.AuxPredicates[r.Head.PredKey()] = true
		}
	}
	seed := rewrite.SeedAtom(ad)
	out.Seeds = []ast.Atom{seed}
	out.AuxPredicates[seed.PredKey()] = true
	// Parameterization schema: like plain magic sets, the seed arguments are
	// the query's bound constants and the answer pattern carries them at the
	// query's bound positions.
	positions := make([]int, len(seed.Args))
	for i := range positions {
		positions[i] = i
	}
	out.SeedBoundArgs = [][]int{positions}
	out.AnswerBoundArgs = rewrite.QueryBoundPositions(ad)
	return out, nil
}

func isAux(pred string) bool {
	return (len(pred) > 6 && pred[:6] == "magic_") || (len(pred) > 4 && pred[:4] == "sup_")
}

// rewriteRule produces the supplementary rules, magic rules and modified
// rule contributed by one adorned rule.
func (rw *Rewriter) rewriteRule(ad *adorn.Program, ruleIdx int, ar adorn.Rule) (sup, magic []ast.Rule, modified ast.Rule, err error) {
	r := ar.Rule
	g := ar.Sip
	headBound := r.Head.Adorn.BoundCount() > 0

	lastIdx, order, err := g.LastWithArc()
	if err != nil {
		return nil, nil, ast.Rule{}, fmt.Errorf("supmagic: rule %d: %w", ruleIdx, err)
	}

	// Rules in which no body literal receives bindings (or whose head is
	// all-free) degenerate to the plain magic-sets shape: guard the body
	// with the head's magic literal and derive magic rules directly from the
	// arcs.
	if lastIdx < 0 || !headBound {
		for pos, lit := range r.Body {
			if !rewrite.IsDerivedOccurrence(ad, lit) || lit.Adorn.BoundCount() == 0 || len(g.ArcsInto(pos)) == 0 {
				continue
			}
			for _, arc := range g.ArcsInto(pos) {
				body := arcBody(r, g, arc, headBound)
				magic = append(magic, ast.Rule{Head: rewrite.MagicAtom(lit), Body: body})
			}
		}
		body := r.Body
		if headBound {
			body = append([]ast.Atom{rewrite.HeadMagicAtom(r)}, body...)
		}
		return nil, magic, ast.Rule{Head: r.Head, Body: body}, nil
	}

	// headVarOrder lists the rule's variables in order of first appearance
	// (head first, then body in sip order) for deterministic supplementary
	// predicate argument lists.
	varOrder := ast.AtomVars(r.Head, nil)
	for _, pos := range order {
		varOrder = ast.AtomVars(r.Body[pos], varOrder)
	}

	// neededFrom[k] is the set of variables appearing in the head or in the
	// body literals at order positions >= k; a supplementary predicate for
	// prefix k keeps only variables needed from k onward.
	n := len(order)
	neededFrom := make([]map[string]bool, n+1)
	neededFrom[n] = ast.AtomVarSet(r.Head)
	for k := n - 1; k >= 0; k-- {
		set := make(map[string]bool)
		for v := range neededFrom[k+1] {
			set[v] = true
		}
		for v := range ast.AtomVarSet(r.Body[order[k]]) {
			set[v] = true
		}
		neededFrom[k] = set
	}

	// m is the 1-based position (within the sip order) of the last body
	// literal with an incoming arc.
	m := lastIdx + 1

	// supAtom(i) is the i-th supplementary predicate of this rule (1-based),
	// with supAtom(1) replaced by the head's magic literal per the standard
	// optimization.
	phi := make([]map[string]bool, m+1)
	phi[1] = g.BoundHeadVars()
	supAtom := func(i int) ast.Atom {
		if i == 1 {
			return rewrite.HeadMagicAtom(r)
		}
		return ast.Atom{
			Pred: fmt.Sprintf("sup_%d_%d", ruleIdx+1, i),
			Args: varsInOrder(phi[i], varOrder),
		}
	}

	// Supplementary rules for i = 2..m.
	for i := 2; i <= m; i++ {
		prevLit := r.Body[order[i-2]]
		set := make(map[string]bool)
		for v := range phi[i-1] {
			set[v] = true
		}
		for v := range ast.AtomVarSet(prevLit) {
			set[v] = true
		}
		if !rw.opts.KeepUnusedVariables {
			for v := range set {
				if !neededFrom[i-1][v] {
					delete(set, v)
				}
			}
		}
		phi[i] = set
		sup = append(sup, ast.Rule{
			Head: supAtom(i),
			Body: []ast.Atom{supAtom(i - 1), prevLit},
		})
	}

	// Magic rules: for each body literal with an incoming arc (at sip-order
	// position j, 1-based), magic_q^a(bound args) :- sup_j.
	for j := 1; j <= m; j++ {
		lit := r.Body[order[j-1]]
		if !rewrite.IsDerivedOccurrence(ad, lit) || lit.Adorn.BoundCount() == 0 || len(g.ArcsInto(order[j-1])) == 0 {
			continue
		}
		magic = append(magic, ast.Rule{
			Head: rewrite.MagicAtom(lit),
			Body: []ast.Atom{supAtom(j)},
		})
	}

	// Modified rule: restart from sup_m and keep the literals from the last
	// arc-receiving one onward.
	body := []ast.Atom{supAtom(m)}
	for k := m - 1; k < n; k++ {
		body = append(body, r.Body[order[k]])
	}
	modified = ast.Rule{Head: r.Head, Body: body}
	return sup, magic, modified, nil
}

// arcBody builds a magic rule body directly from a sip arc (used only for
// the degenerate cases where no supplementary predicates are introduced).
func arcBody(r ast.Rule, g *sip.Graph, arc sip.Arc, headBound bool) []ast.Atom {
	var body []ast.Atom
	if arc.HasTailMember(sip.HeadNode) && headBound {
		body = append(body, rewrite.HeadMagicAtom(r))
	}
	for _, node := range sip.SortedNodes(arc.Tail) {
		if node == sip.HeadNode {
			continue
		}
		body = append(body, r.Body[node])
	}
	return body
}

// varsInOrder returns the variables of the set as terms, ordered by the
// given first-appearance order.
func varsInOrder(set map[string]bool, order []string) []ast.Term {
	var out []ast.Term
	for _, v := range order {
		if set[v] {
			out = append(out, ast.V(v))
		}
	}
	return out
}
