package supmagic

import (
	"fmt"
	"testing"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/rewrite"
	"repro/internal/rewrite/magic"
	"repro/internal/sip"
)

const (
	ancestorSrc = `
		a(X, Y) :- p(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
	`
	nonlinearAncestorSrc = `
		a(X, Y) :- p(X, Y).
		a(X, Y) :- a(X, Z), a(Z, Y).
	`
	nestedSameGenSrc = `
		p(X, Y) :- b1(X, Y).
		p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).
	`
	listReverseSrc = `
		append(V, [], [V]) :- elem(V).
		append(V, [W | X], [W | Y]) :- append(V, X, Y).
		reverse([], []) :- emptylist(X).
		reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
	`
	nonlinearSameGenSrc = `
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).
	`
)

func rewriteSrc(t *testing.T, src, query string, strat sip.Strategy, opts Options) *rewrite.Rewriting {
	t.Helper()
	prog := parser.MustParseProgram(src)
	q := parser.MustParseQuery(query)
	ad, err := adorn.Adorn(prog, q, strat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(opts).Rewrite(ad)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkRewriting(t *testing.T, got *rewrite.Rewriting, wantRules []string, wantSeeds []string) {
	t.Helper()
	if len(got.Program.Rules) != len(wantRules) {
		t.Fatalf("expected %d rules, got %d:\n%s", len(wantRules), len(got.Program.Rules), got)
	}
	for i, w := range wantRules {
		if g := got.Program.Rules[i].String(); g != w {
			t.Errorf("rule %d:\n got  %s\n want %s", i, g, w)
		}
	}
	for i, w := range wantSeeds {
		if g := got.Seeds[i].String(); g != w {
			t.Errorf("seed %d:\n got  %s\n want %s", i, g, w)
		}
	}
}

// TestAppendixA41Ancestor reproduces Appendix A.4.1 (optimized form).
func TestAppendixA41Ancestor(t *testing.T) {
	res := rewriteSrc(t, ancestorSrc, "a(john, Y)", sip.FullLeftToRight(), Options{})
	checkRewriting(t, res,
		[]string{
			"sup_2_2(X, Z) :- magic_a^bf(X), p(X, Z).",
			"a^bf(X, Y) :- magic_a^bf(X), p(X, Y).",
			"a^bf(X, Y) :- sup_2_2(X, Z), a^bf(Z, Y).",
			"magic_a^bf(Z) :- sup_2_2(X, Z).",
		},
		[]string{"magic_a^bf(john)"},
	)
}

// TestAppendixA42NonlinearAncestor reproduces Appendix A.4.2, including the
// vacuous magic_a^bf(X) :- magic_a^bf(X) rule the paper notes can be deleted.
func TestAppendixA42NonlinearAncestor(t *testing.T) {
	res := rewriteSrc(t, nonlinearAncestorSrc, "a(john, Y)", sip.FullLeftToRight(), Options{})
	checkRewriting(t, res,
		[]string{
			"sup_2_2(X, Z) :- magic_a^bf(X), a^bf(X, Z).",
			"a^bf(X, Y) :- magic_a^bf(X), p(X, Y).",
			"a^bf(X, Y) :- sup_2_2(X, Z), a^bf(Z, Y).",
			"magic_a^bf(X) :- magic_a^bf(X).",
			"magic_a^bf(Z) :- sup_2_2(X, Z).",
		},
		[]string{"magic_a^bf(john)"},
	)
}

// TestAppendixA43NestedSameGeneration reproduces Appendix A.4.3.
func TestAppendixA43NestedSameGeneration(t *testing.T) {
	res := rewriteSrc(t, nestedSameGenSrc, "p(john, Y)", sip.FullLeftToRight(), Options{})
	checkRewriting(t, res,
		[]string{
			"sup_2_2(X, Z1) :- magic_p^bf(X), sg^bf(X, Z1).",
			"sup_4_2(X, Z1) :- magic_sg^bf(X), up(X, Z1).",
			"p^bf(X, Y) :- magic_p^bf(X), b1(X, Y).",
			"p^bf(X, Y) :- sup_2_2(X, Z1), p^bf(Z1, Z2), b2(Z2, Y).",
			"sg^bf(X, Y) :- magic_sg^bf(X), flat(X, Y).",
			"sg^bf(X, Y) :- sup_4_2(X, Z1), sg^bf(Z1, Z2), down(Z2, Y).",
			"magic_sg^bf(X) :- magic_p^bf(X).",
			"magic_p^bf(Z1) :- sup_2_2(X, Z1).",
			"magic_sg^bf(Z1) :- sup_4_2(X, Z1).",
		},
		[]string{"magic_p^bf(john)"},
	)
}

// TestAppendixA44ListReverse reproduces Appendix A.4.4.
func TestAppendixA44ListReverse(t *testing.T) {
	res := rewriteSrc(t, listReverseSrc, "reverse([a, b, c], Y)", sip.FullLeftToRight(), Options{})
	checkRewriting(t, res,
		[]string{
			"sup_2_2(V, X, Z) :- magic_reverse^bf([V | X]), reverse^bf(X, Z).",
			"reverse^bf([], []) :- magic_reverse^bf([]), emptylist(X).",
			"reverse^bf([V | X], Y) :- sup_2_2(V, X, Z), append^bbf(V, Z, Y).",
			"append^bbf(V, [], [V]) :- magic_append^bbf(V, []), elem(V).",
			"append^bbf(V, [W | X], [W | Y]) :- magic_append^bbf(V, [W | X]), append^bbf(V, X, Y).",
			"magic_reverse^bf(X) :- magic_reverse^bf([V | X]).",
			"magic_append^bbf(V, Z) :- sup_2_2(V, X, Z).",
			"magic_append^bbf(V, X) :- magic_append^bbf(V, [W | X]).",
		},
		[]string{"magic_reverse^bf([a, b, c])"},
	)
}

// TestExample5NonlinearSameGeneration reproduces Example 5: the chain of
// supplementary predicates for the 5-literal recursive rule.
func TestExample5NonlinearSameGeneration(t *testing.T) {
	res := rewriteSrc(t, nonlinearSameGenSrc, "sg(john, Y)", sip.FullLeftToRight(), Options{})
	checkRewriting(t, res,
		[]string{
			"sup_2_2(X, Z1) :- magic_sg^bf(X), up(X, Z1).",
			"sup_2_3(X, Z2) :- sup_2_2(X, Z1), sg^bf(Z1, Z2).",
			"sup_2_4(X, Z3) :- sup_2_3(X, Z2), flat(Z2, Z3).",
			"sg^bf(X, Y) :- magic_sg^bf(X), flat(X, Y).",
			"sg^bf(X, Y) :- sup_2_4(X, Z3), sg^bf(Z3, Z4), down(Z4, Y).",
			"magic_sg^bf(Z1) :- sup_2_2(X, Z1).",
			"magic_sg^bf(Z3) :- sup_2_4(X, Z3).",
		},
		[]string{"magic_sg^bf(john)"},
	)
	// Example 5 keeps X in every supplementary predicate because X is a head
	// variable needed by no later body literal but by the final join in the
	// original algorithm; our projection keeps it for the same reason (it
	// appears in the head).
	if res.AnswerPred != "sg^bf" {
		t.Errorf("answer pred = %s", res.AnswerPred)
	}
}

func TestKeepUnusedVariablesOption(t *testing.T) {
	// With the projection optimization disabled, sup_2_3 in Example 5 keeps
	// Z1 even though no later literal needs it.
	res := rewriteSrc(t, nonlinearSameGenSrc, "sg(john, Y)", sip.FullLeftToRight(), Options{KeepUnusedVariables: true})
	found := false
	for _, r := range res.Program.Rules {
		if r.Head.Pred == "sup_2_3" && len(r.Head.Args) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("KeepUnusedVariables should widen sup_2_3 to 3 arguments:\n%s", res)
	}
}

// --- end-to-end evaluation ------------------------------------------------

func parentChain(n int) *database.Store {
	s := database.NewStore()
	for i := 0; i < n; i++ {
		s.MustAddFact(ast.NewAtom("p", ast.S(fmt.Sprintf("n%d", i)), ast.S(fmt.Sprintf("n%d", i+1))))
	}
	return s
}

func sameGenData(n int) *database.Store {
	s := database.NewStore()
	for i := 1; i <= n; i++ {
		s.MustAddFact(ast.NewAtom("up", ast.S(fmt.Sprintf("a%d", i)), ast.S(fmt.Sprintf("p%d", i))))
		s.MustAddFact(ast.NewAtom("down", ast.S(fmt.Sprintf("p%d", i)), ast.S(fmt.Sprintf("a%d", i))))
		s.MustAddFact(ast.NewAtom("flat", ast.S(fmt.Sprintf("p%d", i)), ast.S(fmt.Sprintf("p%d", (i%n)+1))))
		s.MustAddFact(ast.NewAtom("flat", ast.S(fmt.Sprintf("a%d", i)), ast.S(fmt.Sprintf("a%d", (i%n)+1))))
	}
	return s
}

func evalRewriting(t *testing.T, res *rewrite.Rewriting, edb *database.Store) (*database.Store, *eval.Stats) {
	t.Helper()
	db := edb.Clone()
	for _, seed := range res.Seeds {
		db.MustAddFact(seed)
	}
	store, stats, err := eval.SemiNaive(eval.Options{}).Evaluate(res.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	return store, stats
}

// TestGSMSAgreesWithGMS: Theorem 5.1 — the supplementary rewriting computes
// the same answers (and the same derived/magic relations) as plain magic.
func TestGSMSAgreesWithGMS(t *testing.T) {
	cases := []struct {
		name, src, query, answerPred string
		edb                          *database.Store
		queryAtom                    ast.Atom
	}{
		{
			"ancestor", ancestorSrc, "a(n3, Y)", "a^bf", parentChain(12),
			ast.NewAdornedAtom("a", "bf", ast.S("n3"), ast.V("Y")),
		},
		{
			"same-generation", nonlinearSameGenSrc, "sg(a1, Y)", "sg^bf", sameGenData(5),
			ast.NewAdornedAtom("sg", "bf", ast.S("a1"), ast.V("Y")),
		},
		{
			"nested-same-generation", nestedSameGenSrc, "p(a1, Y)", "p^bf", nestedData(4),
			ast.NewAdornedAtom("p", "bf", ast.S("a1"), ast.V("Y")),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gms := rewriteMagic(t, tc.src, tc.query)
			gsms := rewriteSrc(t, tc.src, tc.query, sip.FullLeftToRight(), Options{})
			s1, stats1 := evalRewriting(t, gms, tc.edb)
			s2, stats2 := evalRewriting(t, gsms, tc.edb)

			a1 := eval.AnswerSet(s1, gms.AnswerPred, tc.queryAtom)
			a2 := eval.AnswerSet(s2, gsms.AnswerPred, tc.queryAtom)
			if len(a1) == 0 {
				t.Fatal("no answers at all; data is wrong")
			}
			if len(a1) != len(a2) {
				t.Fatalf("GMS %d answers, GSMS %d", len(a1), len(a2))
			}
			for k := range a1 {
				if !a2[k] {
					t.Errorf("answer %s missing from GSMS", k)
				}
			}
			// Same derived and magic relations.
			if s1.FactCount(tc.answerPred) != s2.FactCount(tc.answerPred) {
				t.Errorf("derived facts differ: %d vs %d", s1.FactCount(tc.answerPred), s2.FactCount(tc.answerPred))
			}
			// GSMS avoids duplicate joins: it must not perform more join
			// probes than GMS on these workloads.
			if stats2.JoinProbes > stats1.JoinProbes {
				t.Logf("note: GSMS join probes %d > GMS %d on %s", stats2.JoinProbes, stats1.JoinProbes, tc.name)
			}
		})
	}
}

func nestedData(n int) *database.Store {
	s := sameGenData(n)
	for i := 1; i <= n; i++ {
		s.MustAddFact(ast.NewAtom("b1", ast.S(fmt.Sprintf("a%d", i)), ast.S(fmt.Sprintf("x%d", i))))
		s.MustAddFact(ast.NewAtom("b2", ast.S(fmt.Sprintf("x%d", i)), ast.S(fmt.Sprintf("y%d", i))))
	}
	return s
}

func rewriteMagic(t *testing.T, src, query string) *rewrite.Rewriting {
	t.Helper()
	prog := parser.MustParseProgram(src)
	q := parser.MustParseQuery(query)
	ad, err := adorn.Adorn(prog, q, sip.FullLeftToRight())
	if err != nil {
		t.Fatal(err)
	}
	res, err := magic.New(magic.Options{}).Rewrite(ad)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestListReverseEndToEnd(t *testing.T) {
	res := rewriteSrc(t, listReverseSrc, "reverse([a, b, c, d], Y)", sip.FullLeftToRight(), Options{})
	edb := database.NewStore()
	for _, e := range []string{"a", "b", "c", "d"} {
		edb.MustAddFact(ast.NewAtom("elem", ast.S(e)))
	}
	edb.MustAddFact(ast.NewAtom("emptylist", ast.S("nil")))
	store, _ := evalRewriting(t, res, edb)
	answers := eval.Answers(store, res.AnswerPred,
		ast.NewAdornedAtom("reverse", "bf", ast.List(ast.S("a"), ast.S("b"), ast.S("c"), ast.S("d")), ast.V("Y")))
	if len(answers) != 1 || answers[0][0].String() != "[d, c, b, a]" {
		t.Errorf("reverse answers = %v, want [[d, c, b, a]]", answers)
	}
}

func TestFreeHeadFallback(t *testing.T) {
	// An all-free query: the rewriting degenerates gracefully (no head
	// guard) and still returns the full answer set.
	res := rewriteSrc(t, ancestorSrc, "a(X, Y)", sip.FullLeftToRight(), Options{})
	edb := parentChain(4)
	store, _ := evalRewriting(t, res, edb)
	got := eval.AnswerSet(store, "a^ff", ast.NewAdornedAtom("a", "ff", ast.V("X"), ast.V("Y")))
	if len(got) != 10 {
		t.Errorf("free query answers = %d, want 10 (full ancestor relation of a 5-chain)", len(got))
	}
}

func TestRewriteErrors(t *testing.T) {
	rw := New(Options{})
	if _, err := rw.Rewrite(nil); err == nil {
		t.Error("nil adorned program must be rejected")
	}
	if rw.Name() != "generalized-supplementary-magic-sets" {
		t.Errorf("Name = %s", rw.Name())
	}
}
