// Package safety implements the safety analyses of Section 10 of Beeri &
// Ramakrishnan, "On the Power of Magic": the binding graph of a query, the
// positive-cycle condition of Theorem 10.1, the Datalog safety guarantee of
// Theorem 10.2, and the argument-graph cyclicity test of Theorem 10.3 that
// predicts divergence of the counting strategies regardless of the data.
package safety

import (
	"fmt"
	"strings"

	"repro/internal/adorn"
	"repro/internal/ast"
)

// negInf is the weight used for binding-graph arcs whose length can be made
// arbitrarily negative by growing a variable that occurs more often on the
// callee side than on the caller side.
const negInf = int64(-1) << 40

// Arc is an edge of the binding graph: from the adorned head predicate of a
// rule to an adorned derived occurrence in its body.
type Arc struct {
	// From and To are adorned predicate keys.
	From, To string
	// Rule is the index of the adorned rule inducing the arc; Pos the body
	// position of the occurrence.
	Rule, Pos int
	// MinLength is a lower bound on the arc length of Section 10: the total
	// length of the bound arguments of From minus the total length of the
	// bound arguments of To, minimized over all variable lengths >= 1.
	// Unbounded reports that the difference has no finite lower bound.
	MinLength int64
	// Unbounded is true when the arc length can be arbitrarily negative.
	Unbounded bool
}

// BindingGraph is the binding graph of a query (Section 10): its nodes are
// the adorned predicates of the adorned program, its root is the adorned
// query predicate, and it has an arc for every derived occurrence in the
// body of every adorned rule.
type BindingGraph struct {
	// Root is the adorned query predicate key.
	Root string
	// Nodes lists the adorned predicate keys in discovery order.
	Nodes []string
	// Arcs lists the arcs.
	Arcs []Arc
}

// String renders the binding graph arcs.
func (g *BindingGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "binding graph (root %s)\n", g.Root)
	for _, a := range g.Arcs {
		length := fmt.Sprintf("%d", a.MinLength)
		if a.Unbounded {
			length = "-inf"
		}
		fmt.Fprintf(&b, "  %s -[r%d.%d, len>=%s]-> %s\n", a.From, a.Rule, a.Pos, length, a.To)
	}
	return b.String()
}

// BuildBindingGraph constructs the binding graph of an adorned program.
//
// For Datalog programs every argument is a constant or a variable of length
// exactly 1 (the paper's remark after Theorem 10.1 about base relations
// containing only constants), so arc lengths are computed with every
// variable length equal to 1 and are never unbounded. For programs with
// function symbols, a variable in the callee's bound arguments that does not
// occur in the caller's bound arguments can make the arc length arbitrarily
// negative, and the arc is marked unbounded.
func BuildBindingGraph(ad *adorn.Program) *BindingGraph {
	g := &BindingGraph{Root: ad.QueryPred}
	datalog := ad.Original.IsDatalog()
	seen := make(map[string]bool)
	addNode := func(key string) {
		if !seen[key] {
			seen[key] = true
			g.Nodes = append(g.Nodes, key)
		}
	}
	addNode(ad.QueryPred)
	for ruleIdx, ar := range ad.Rules {
		head := ar.Rule.Head
		addNode(head.PredKey())
		headLen, _ := boundLength(head)
		for pos, lit := range ar.Rule.Body {
			if !ad.OriginalDerived[lit.Pred] {
				continue
			}
			addNode(lit.PredKey())
			arc := Arc{From: head.PredKey(), To: lit.PredKey(), Rule: ruleIdx, Pos: pos}
			if datalog {
				litLen, _ := boundLength(lit)
				arc.MinLength = headLen - litLen
			} else {
				litLen, litUnbounded := boundLengthMax(lit, head)
				if litUnbounded {
					arc.Unbounded = true
					arc.MinLength = negInf
				} else {
					arc.MinLength = headLen - litLen
				}
			}
			g.Arcs = append(g.Arcs, arc)
		}
	}
	return g
}

// boundLength returns a lower bound on the total length of the bound
// arguments of an adorned atom, assuming every variable has length exactly
// its minimum 1. The bool result is reserved for future use and is always
// false (a lower bound always exists).
func boundLength(a ast.Atom) (int64, bool) {
	var total int64
	for i, arg := range a.Args {
		if !a.Adorn.Bound(i) {
			continue
		}
		c, mult := ast.SymbolicLength(arg)
		total += int64(c)
		for _, m := range mult {
			total += int64(m)
		}
	}
	return total, false
}

// boundLengthMax returns an upper bound on the total length of the bound
// arguments of a body occurrence relative to the head: variables that also
// occur in the head's bound arguments contribute the same (unknown) length
// to both sides and cancel in the arc-length difference, so they are counted
// with multiplicity 1 here as well; a variable of the body occurrence that
// does not occur in the head's bound arguments can be arbitrarily long, so
// its presence makes the difference unbounded below — unless the lengths
// still cancel, which we conservatively do not attempt to prove.
func boundLengthMax(lit, head ast.Atom) (int64, bool) {
	headVars := make(map[string]int)
	for i, arg := range head.Args {
		if !head.Adorn.Bound(i) {
			continue
		}
		_, mult := ast.SymbolicLength(arg)
		for v, m := range mult {
			headVars[v] += m
		}
	}
	var total int64
	unbounded := false
	litVars := make(map[string]int)
	for i, arg := range lit.Args {
		if !lit.Adorn.Bound(i) {
			continue
		}
		c, mult := ast.SymbolicLength(arg)
		total += int64(c)
		for v, m := range mult {
			litVars[v] += m
		}
	}
	for v, m := range litVars {
		total += int64(m)
		if m > headVars[v] {
			// The callee's bound arguments mention v more often than the
			// caller's; growing v makes the difference arbitrarily negative.
			unbounded = true
		}
	}
	return total, unbounded
}

// AllCyclesPositive reports whether every cycle of the binding graph has
// strictly positive length (the hypothesis of Theorem 10.1). It uses a
// Floyd–Warshall closure over minimum arc lengths; arcs with unbounded
// negative length on a cycle make the test fail.
func (g *BindingGraph) AllCyclesPositive() bool {
	idx := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		idx[n] = i
	}
	n := len(g.Nodes)
	const inf = int64(1) << 50
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
		for j := range dist[i] {
			dist[i][j] = inf
		}
	}
	for _, a := range g.Arcs {
		w := a.MinLength
		i, j := idx[a.From], idx[a.To]
		if w < dist[i][j] {
			dist[i][j] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dist[i][k] == inf || dist[k][j] == inf {
					continue
				}
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] != inf && dist[i][i] <= 0 {
			return false
		}
	}
	return true
}

// ArgumentGraph is the argument graph of Theorem 10.3: its nodes are pairs
// (adorned predicate, bound argument position) and it has an arc whenever a
// variable occurs in a bound argument of a rule head and in a bound argument
// of a derived occurrence in that rule's body.
type ArgumentGraph struct {
	// Nodes are encoded as "pred^adorn#position".
	Nodes []string
	// Edges maps a node to its successors.
	Edges map[string][]string
	// Roots are the nodes of the adorned query predicate.
	Roots []string
}

// node encodes an argument-graph node.
func argNode(predKey string, pos int) string { return fmt.Sprintf("%s#%d", predKey, pos) }

// BuildArgumentGraph constructs the argument graph of an adorned program.
func BuildArgumentGraph(ad *adorn.Program) *ArgumentGraph {
	g := &ArgumentGraph{Edges: make(map[string][]string)}
	seen := make(map[string]bool)
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			g.Nodes = append(g.Nodes, n)
		}
	}
	for i := range ad.Query.Atom.Args {
		if ad.QueryAdornment.Bound(i) {
			root := argNode(ad.QueryPred, i)
			addNode(root)
			g.Roots = append(g.Roots, root)
		}
	}
	for _, ar := range ad.Rules {
		head := ar.Rule.Head
		for hi, harg := range head.Args {
			if !head.Adorn.Bound(hi) {
				continue
			}
			hvars := ast.VarSet(harg)
			from := argNode(head.PredKey(), hi)
			addNode(from)
			for _, lit := range ar.Rule.Body {
				if !ad.OriginalDerived[lit.Pred] {
					continue
				}
				for bi, barg := range lit.Args {
					if !lit.Adorn.Bound(bi) {
						continue
					}
					shared := false
					for _, v := range ast.Vars(barg, nil) {
						if hvars[v] {
							shared = true
							break
						}
					}
					if shared {
						to := argNode(lit.PredKey(), bi)
						addNode(to)
						g.Edges[from] = append(g.Edges[from], to)
					}
				}
			}
		}
	}
	return g
}

// HasReachableCycle reports whether the argument graph contains a cycle
// reachable from one of its root nodes.
func (g *ArgumentGraph) HasReachableCycle() bool {
	_, ok := g.ReachableCycleNode()
	return ok
}

// ReachableCycleNode returns a witness for the Theorem 10.3 test: a node
// ("pred^adorn#position") that lies on a cycle of the argument graph
// reachable from a root, and whether one exists. The lint layer uses the
// witness to point its divergence diagnostic at the offending rule and
// argument position. Iteration is over Nodes (insertion order), so the
// witness is deterministic.
func (g *ArgumentGraph) ReachableCycleNode() (string, bool) {
	reachable := make(map[string]bool)
	var mark func(string)
	mark = func(n string) {
		if reachable[n] {
			return
		}
		reachable[n] = true
		for _, m := range g.Edges[n] {
			mark(m)
		}
	}
	for _, r := range g.Roots {
		mark(r)
	}
	// Cycle detection restricted to reachable nodes (DFS colors); a back
	// edge to a gray node identifies that node as lying on a cycle.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(string) (string, bool)
	visit = func(n string) (string, bool) {
		color[n] = gray
		for _, m := range g.Edges[n] {
			if !reachable[m] {
				continue
			}
			switch color[m] {
			case gray:
				return m, true
			case white:
				if w, ok := visit(m); ok {
					return w, ok
				}
			}
		}
		color[n] = black
		return "", false
	}
	for _, n := range g.Nodes {
		if reachable[n] && color[n] == white {
			if w, ok := visit(n); ok {
				return w, true
			}
		}
	}
	return "", false
}

// SplitArgNode decodes an argument-graph node "pred^adorn#position" into the
// adorned predicate key and the 0-based argument position. ok is false if the
// string is not a node encoding.
func SplitArgNode(node string) (predKey string, pos int, ok bool) {
	i := strings.LastIndexByte(node, '#')
	if i < 0 {
		return "", 0, false
	}
	n := 0
	if _, err := fmt.Sscanf(node[i+1:], "%d", &n); err != nil {
		return "", 0, false
	}
	return node[:i], n, true
}

// Report is the combined safety assessment for an adorned program.
type Report struct {
	// IsDatalog reports whether the program is function-free.
	IsDatalog bool
	// BindingGraph is the binding graph of the query.
	BindingGraph *BindingGraph
	// ArgumentGraph is the argument graph of the query.
	ArgumentGraph *ArgumentGraph
	// MagicSafe reports that the bottom-up evaluation of the magic-rewritten
	// program is guaranteed to terminate: either the program is Datalog
	// (Theorem 10.2) or every binding-graph cycle has positive length
	// (Theorem 10.1).
	MagicSafe bool
	// MagicSafeReason explains which theorem established MagicSafe (or why
	// neither applies).
	MagicSafeReason string
	// CountingMayDivergeOnAllData reports that the counting strategies will
	// not terminate for the query regardless of the data, because the
	// reachable part of the argument graph is cyclic (Theorem 10.3). Even
	// when false, the counting strategies may still diverge on cyclic data.
	CountingMayDivergeOnAllData bool
	// CountingSafe reports that the counting strategies are guaranteed to
	// terminate on all databases: every binding-graph cycle has positive
	// length (Theorem 10.1). Datalog programs do not qualify (their cycles
	// have length 0 and cyclic data defeats counting).
	CountingSafe bool
}

// String renders a one-line summary per conclusion.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "datalog: %v\n", r.IsDatalog)
	fmt.Fprintf(&b, "magic safe: %v (%s)\n", r.MagicSafe, r.MagicSafeReason)
	fmt.Fprintf(&b, "counting safe on all data: %v\n", r.CountingSafe)
	fmt.Fprintf(&b, "counting diverges regardless of data: %v\n", r.CountingMayDivergeOnAllData)
	return b.String()
}

// Analyze runs all safety analyses on an adorned program.
func Analyze(ad *adorn.Program) *Report {
	r := &Report{
		IsDatalog:     ad.Original.IsDatalog(),
		BindingGraph:  BuildBindingGraph(ad),
		ArgumentGraph: BuildArgumentGraph(ad),
	}
	positive := r.BindingGraph.AllCyclesPositive()
	switch {
	case r.IsDatalog:
		r.MagicSafe = true
		r.MagicSafeReason = "Datalog program (Theorem 10.2)"
	case positive:
		r.MagicSafe = true
		r.MagicSafeReason = "every binding-graph cycle has positive length (Theorem 10.1)"
	default:
		r.MagicSafe = false
		r.MagicSafeReason = "neither Theorem 10.1 nor Theorem 10.2 applies"
	}
	r.CountingSafe = positive && !r.IsDatalog
	if r.IsDatalog {
		r.CountingMayDivergeOnAllData = r.ArgumentGraph.HasReachableCycle()
	}
	return r
}
