package safety

import (
	"strings"
	"testing"

	"repro/internal/adorn"
	"repro/internal/parser"
	"repro/internal/sip"
)

func adorned(t *testing.T, src, query string) *adorn.Program {
	t.Helper()
	ad, err := adorn.Adorn(parser.MustParseProgram(src), parser.MustParseQuery(query), sip.FullLeftToRight())
	if err != nil {
		t.Fatal(err)
	}
	return ad
}

const (
	ancestorSrc = `
		a(X, Y) :- p(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
	`
	nonlinearAncestorSrc = `
		a(X, Y) :- p(X, Y).
		a(X, Y) :- a(X, Z), a(Z, Y).
	`
	nestedSameGenSrc = `
		p(X, Y) :- b1(X, Y).
		p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).
	`
	listReverseSrc = `
		append(V, [], [V]) :- elem(V).
		append(V, [W | X], [W | Y]) :- append(V, X, Y).
		reverse([], []) :- emptylist(X).
		reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
	`
	// A program with function symbols whose binding-graph cycle has length
	// zero: the bound argument is passed along unchanged, so Theorem 10.1
	// does not apply and neither does Theorem 10.2.
	unsafeLoopSrc = `
		loop(X, Y) :- edge(X, Y).
		loop(X, Y) :- loop(X, Z), edge(Z, Y).
		wrap(X, Y) :- loop(f(X), Y).
	`
)

func TestBindingGraphAncestor(t *testing.T) {
	ad := adorned(t, ancestorSrc, "a(john, Y)")
	g := BuildBindingGraph(ad)
	if g.Root != "a^bf" || len(g.Nodes) != 1 {
		t.Errorf("root=%s nodes=%v", g.Root, g.Nodes)
	}
	if len(g.Arcs) != 1 {
		t.Fatalf("arcs = %v", g.Arcs)
	}
	a := g.Arcs[0]
	if a.From != "a^bf" || a.To != "a^bf" || a.MinLength != 0 || a.Unbounded {
		t.Errorf("arc = %+v", a)
	}
	// A zero-length cycle: Theorem 10.1 does not apply...
	if g.AllCyclesPositive() {
		t.Error("the Datalog ancestor cycle has length 0; AllCyclesPositive must be false")
	}
	// ...but Theorem 10.2 does.
	rep := Analyze(ad)
	if !rep.IsDatalog || !rep.MagicSafe || !strings.Contains(rep.MagicSafeReason, "10.2") {
		t.Errorf("report = %+v", rep)
	}
	if rep.CountingSafe {
		t.Error("counting is not safe for Datalog programs in general (cyclic data)")
	}
	if rep.CountingMayDivergeOnAllData {
		t.Error("linear ancestor's argument graph is acyclic; counting terminates on acyclic data")
	}
}

func TestBindingGraphListReverse(t *testing.T) {
	ad := adorned(t, listReverseSrc, "reverse([a, b, c], Y)")
	g := BuildBindingGraph(ad)
	if g.Root != "reverse^bf" {
		t.Errorf("root = %s", g.Root)
	}
	// Both recursive cycles shrink the bound list by one cons cell, so every
	// cycle has positive length and both magic and counting are safe
	// (Theorem 10.1).
	if !g.AllCyclesPositive() {
		t.Errorf("list reverse cycles must be positive:\n%s", g)
	}
	rep := Analyze(ad)
	if rep.IsDatalog {
		t.Error("list reverse is not Datalog")
	}
	if !rep.MagicSafe || !strings.Contains(rep.MagicSafeReason, "10.1") {
		t.Errorf("magic safety: %+v", rep)
	}
	if !rep.CountingSafe {
		t.Error("counting is safe for list reverse (positive cycles)")
	}
	if rep.String() == "" || g.String() == "" {
		t.Error("renderings must not be empty")
	}
}

func TestArgumentGraphNonlinearAncestor(t *testing.T) {
	ad := adorned(t, nonlinearAncestorSrc, "a(john, Y)")
	g := BuildArgumentGraph(ad)
	if len(g.Roots) != 1 || g.Roots[0] != "a^bf#0" {
		t.Errorf("roots = %v", g.Roots)
	}
	if !g.HasReachableCycle() {
		t.Error("the nonlinear ancestor argument graph has a reachable self-loop")
	}
	rep := Analyze(ad)
	if !rep.CountingMayDivergeOnAllData {
		t.Error("Theorem 10.3: counting diverges for nonlinear ancestor regardless of the data")
	}
	if !rep.MagicSafe {
		t.Error("magic is still safe (Datalog)")
	}
}

func TestArgumentGraphLinearProgramsAcyclic(t *testing.T) {
	for _, tc := range []struct{ src, query string }{
		{ancestorSrc, "a(john, Y)"},
		{nestedSameGenSrc, "p(john, Y)"},
	} {
		ad := adorned(t, tc.src, tc.query)
		g := BuildArgumentGraph(ad)
		if g.HasReachableCycle() {
			t.Errorf("argument graph for %s should be acyclic", tc.query)
		}
	}
}

func TestUnsafeNonDatalogProgram(t *testing.T) {
	ad := adorned(t, unsafeLoopSrc, "wrap(a, Y)")
	rep := Analyze(ad)
	if rep.IsDatalog {
		t.Error("program uses a function symbol")
	}
	// The loop predicate passes its bound argument around a cycle unchanged:
	// cycle length 0, not Datalog, so no safety guarantee.
	if rep.MagicSafe {
		t.Errorf("no safety theorem applies to this program: %+v", rep)
	}
}

func TestNestedSameGenerationSafety(t *testing.T) {
	ad := adorned(t, nestedSameGenSrc, "p(john, Y)")
	rep := Analyze(ad)
	if !rep.IsDatalog || !rep.MagicSafe {
		t.Errorf("nested same generation is Datalog and magic-safe: %+v", rep)
	}
	g := rep.BindingGraph
	// Nodes: p^bf and sg^bf; arcs p->sg, p->p, sg->sg.
	if len(g.Nodes) != 2 || len(g.Arcs) != 3 {
		t.Errorf("binding graph shape wrong:\n%s", g)
	}
}

func TestBoundLengthHelpers(t *testing.T) {
	a, err := parser.ParseAtom("reverse([V | X], Y)")
	if err != nil {
		t.Fatal(err)
	}
	a.Adorn = "bf"
	n, unbounded := boundLength(a)
	if n != 3 || unbounded {
		t.Errorf("boundLength([V|X]) = %d (unbounded=%v), want 3", n, unbounded)
	}
	body, _ := parser.ParseAtom("append(V, Z, Y)")
	body.Adorn = "bbf"
	_, unb := boundLengthMax(body, a)
	if !unb {
		t.Error("Z does not occur in the head's bound arguments; the difference must be unbounded")
	}
}
