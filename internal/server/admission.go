// Per-tenant admission control: the layer between the HTTP handlers and
// the engine that decides whether a request may run at all and, when it
// may, how much it may cost.
//
// Every request is accounted to a tenant (the X-Tenant header; "default"
// when absent) with four knobs, the same shape a production Datalog engine
// like Google Mangle exposes (FactLimit / DerivedFactsLimit / QueryTimeout):
//
//   - MaxConcurrent: a counting semaphore per tenant. Admission is
//     non-blocking — a tenant at capacity is rejected immediately with
//     over_capacity (HTTP 429) instead of queueing, so one tenant's burst
//     cannot build an unbounded queue inside the server.
//   - MaxDerivations / MaxFacts: per-request derivation gas and fact caps,
//     clamped onto whatever the request's own Options ask for. A request
//     can lower its gas below the tenant cap, never raise it above.
//   - Timeout: a wall-clock bound turned into a context deadline at
//     admission; the engine's fixpoints observe it mid-evaluation.
//   - MaxBodyBytes: the request-size cap, enforced before the body is
//     decoded (http.MaxBytesReader), so an oversized upload is refused
//     after reading at most the cap.
//
// Rejections and limit hits are never silent: the structured error carries
// the tenant, and evaluations that died on their gas return the
// datalog.Stats they accrued — the client sees what the aborted run cost.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/datalog"
)

// Limits are one tenant's admission-control knobs. The zero value of each
// field means "unlimited" (no semaphore, no gas cap, no deadline); the zero
// Limits admits everything, which is the right default for trusted
// single-tenant use.
type Limits struct {
	// MaxConcurrent caps the tenant's in-flight requests (queries, streams
	// and transactions alike); excess requests are rejected immediately
	// with over_capacity.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxDerivations is the per-request derivation gas: every request's
	// Options.MaxDerivations is clamped to at most this.
	MaxDerivations int64 `json:"max_derivations,omitempty"`
	// MaxFacts clamps Options.MaxFacts the same way.
	MaxFacts int `json:"max_facts,omitempty"`
	// Timeout is the per-request wall-clock bound; requests may ask for
	// less via timeout_ms, never for more.
	Timeout time.Duration `json:"-"`
	// TimeoutMillis is the JSON face of Timeout (config files and
	// /v1/stats); when both are set, Timeout wins.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// MaxBodyBytes caps the request body size.
	MaxBodyBytes int64 `json:"max_body_bytes,omitempty"`
}

// timeout resolves the effective wall-clock bound of the limits.
func (l Limits) timeout() time.Duration {
	if l.Timeout > 0 {
		return l.Timeout
	}
	if l.TimeoutMillis > 0 {
		return time.Duration(l.TimeoutMillis) * time.Millisecond
	}
	return 0
}

// clampOptions applies the tenant's per-request resource caps onto a
// request's evaluation options: a request keeps a stricter limit of its
// own and is cut down to the tenant cap otherwise.
func (l Limits) clampOptions(o *datalog.Options) {
	if l.MaxDerivations > 0 && (o.MaxDerivations == 0 || o.MaxDerivations > l.MaxDerivations) {
		o.MaxDerivations = l.MaxDerivations
	}
	if l.MaxFacts > 0 && (o.MaxFacts == 0 || o.MaxFacts > l.MaxFacts) {
		o.MaxFacts = l.MaxFacts
	}
}

// requestContext derives the evaluation context: the tighter of the
// request's own timeout ask and the tenant bound, as a deadline on ctx.
// The returned cancel must always be called.
func (l Limits) requestContext(ctx context.Context, asked time.Duration) (context.Context, context.CancelFunc) {
	bound := l.timeout()
	if asked > 0 && (bound == 0 || asked < bound) {
		bound = asked
	}
	if bound <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, bound)
}

// tenant is the live admission state of one tenant: its resolved limits,
// the concurrency semaphore, and the counters /v1/stats reports.
type tenant struct {
	name   string
	limits Limits
	// sem is the concurrency semaphore; nil means unlimited.
	sem chan struct{}

	admitted      atomic.Int64
	rejected      atomic.Int64
	active        atomic.Int64
	queries       atomic.Int64
	streams       atomic.Int64
	txns          atomic.Int64
	rowsStreamed  atomic.Int64
	limitExceeded atomic.Int64
}

// admit tries to take a concurrency slot without blocking. On success the
// returned release must be called exactly once when the request finishes;
// on failure the request must be rejected with the returned error.
func (t *tenant) admit() (release func(), err error) {
	if t.sem != nil {
		select {
		case t.sem <- struct{}{}:
		default:
			t.rejected.Add(1)
			return nil, fmt.Errorf("tenant %q is at its concurrency limit (%d in flight)",
				t.name, t.limits.MaxConcurrent)
		}
	}
	t.admitted.Add(1)
	t.active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			t.active.Add(-1)
			if t.sem != nil {
				<-t.sem
			}
		})
	}, nil
}

// stats snapshots the tenant's counters.
func (t *tenant) stats() TenantStats {
	return TenantStats{
		Admitted:      t.admitted.Load(),
		Rejected:      t.rejected.Load(),
		Active:        t.active.Load(),
		Queries:       t.queries.Load(),
		Streams:       t.streams.Load(),
		Txns:          t.txns.Load(),
		RowsStreamed:  t.rowsStreamed.Load(),
		LimitExceeded: t.limitExceeded.Load(),
	}
}

// admission is the tenant registry: configured per-tenant overrides over a
// default Limits, with tenant state created lazily on first sight.
type admission struct {
	defaults  Limits
	overrides map[string]Limits

	mu      sync.Mutex
	tenants map[string]*tenant
}

func newAdmission(defaults Limits, overrides map[string]Limits) *admission {
	return &admission{
		defaults:  defaults,
		overrides: overrides,
		tenants:   make(map[string]*tenant),
	}
}

// tenantFor returns (creating on first use) the admission state of a
// tenant. Unknown tenants get the default limits — multi-tenancy is
// accounting-first: a tenant never configured still gets its own
// semaphore and counters.
func (a *admission) tenantFor(name string) *tenant {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[name]; ok {
		return t
	}
	limits := a.defaults
	if o, ok := a.overrides[name]; ok {
		limits = o
	}
	t := &tenant{name: name, limits: limits}
	if limits.MaxConcurrent > 0 {
		t.sem = make(chan struct{}, limits.MaxConcurrent)
	}
	a.tenants[name] = t
	return t
}

// statsByTenant snapshots every known tenant's counters.
func (a *admission) statsByTenant() map[string]TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStats, len(a.tenants))
	for name, t := range a.tenants {
		out[name] = t.stats()
	}
	return out
}
