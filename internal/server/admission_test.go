package server

import (
	"context"
	"testing"
	"time"

	"repro/datalog"
)

func TestLimitsClampOptions(t *testing.T) {
	cases := []struct {
		name      string
		limits    Limits
		in        datalog.Options
		wantGas   int64
		wantFacts int
	}{
		{"zero limits leave options alone",
			Limits{}, datalog.Options{MaxDerivations: 7, MaxFacts: 9}, 7, 9},
		{"unset request options take the tenant cap",
			Limits{MaxDerivations: 100, MaxFacts: 50}, datalog.Options{}, 100, 50},
		{"looser request options are clamped down",
			Limits{MaxDerivations: 100, MaxFacts: 50}, datalog.Options{MaxDerivations: 1000, MaxFacts: 500}, 100, 50},
		{"stricter request options are kept",
			Limits{MaxDerivations: 100, MaxFacts: 50}, datalog.Options{MaxDerivations: 10, MaxFacts: 5}, 10, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.in
			tc.limits.clampOptions(&o)
			if o.MaxDerivations != tc.wantGas {
				t.Errorf("MaxDerivations = %d, want %d", o.MaxDerivations, tc.wantGas)
			}
			if o.MaxFacts != tc.wantFacts {
				t.Errorf("MaxFacts = %d, want %d", o.MaxFacts, tc.wantFacts)
			}
		})
	}
}

func TestLimitsRequestContext(t *testing.T) {
	deadlineIn := func(l Limits, asked time.Duration) (time.Duration, bool) {
		ctx, cancel := l.requestContext(context.Background(), asked)
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok {
			return 0, false
		}
		return time.Until(dl), true
	}

	if _, ok := deadlineIn(Limits{}, 0); ok {
		t.Error("no bounds should mean no deadline")
	}
	if d, ok := deadlineIn(Limits{Timeout: time.Hour}, 0); !ok || d > time.Hour {
		t.Errorf("tenant bound alone: deadline in %v, ok=%v", d, ok)
	}
	// The request may ask for less than the tenant bound, never for more.
	if d, ok := deadlineIn(Limits{Timeout: time.Hour}, time.Second); !ok || d > time.Second {
		t.Errorf("tighter ask should win: deadline in %v, ok=%v", d, ok)
	}
	if d, ok := deadlineIn(Limits{Timeout: time.Second}, time.Hour); !ok || d > 2*time.Second {
		t.Errorf("looser ask must be clamped to tenant bound: deadline in %v, ok=%v", d, ok)
	}
	// TimeoutMillis is the JSON face of Timeout.
	if d, ok := deadlineIn(Limits{TimeoutMillis: 1000}, 0); !ok || d > time.Second {
		t.Errorf("TimeoutMillis bound: deadline in %v, ok=%v", d, ok)
	}
}

func TestTenantAdmit(t *testing.T) {
	adm := newAdmission(Limits{}, map[string]Limits{"locked": {MaxConcurrent: 2}})
	tn := adm.tenantFor("locked")

	rel1, err := tn.admit()
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := tn.admit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.admit(); err == nil {
		t.Fatal("third admit should be rejected at MaxConcurrent=2")
	}
	rel1()
	rel1() // release is idempotent: double-release must not free a second slot
	rel3, err := tn.admit()
	if err != nil {
		t.Fatalf("admit after one release: %v", err)
	}
	if _, err := tn.admit(); err == nil {
		t.Fatal("the double release leaked a slot")
	}
	rel2()
	rel3()

	st := tn.stats()
	if st.Admitted != 3 || st.Rejected != 2 || st.Active != 0 {
		t.Errorf("stats = %+v, want admitted=3 rejected=2 active=0", st)
	}

	// An unconfigured tenant gets the defaults (here: unlimited) and its own
	// counters.
	other := adm.tenantFor("other")
	if other.sem != nil {
		t.Error("default tenant should have no semaphore")
	}
	if adm.tenantFor("other") != other {
		t.Error("tenant state should be created once and reused")
	}
	if _, ok := adm.statsByTenant()["other"]; !ok {
		t.Error("statsByTenant should include every tenant seen")
	}
}
