// The /v1 endpoint handlers: decode → admit → pin snapshot → evaluate →
// encode. Everything tenant-scoped (semaphore, gas clamps, deadlines, body
// caps, counters) goes through admission.go; everything consistency-scoped
// goes through the snapshot pinned at admission.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/datalog"
)

// tenantHeader names the request's tenant; absent means defaultTenant.
const (
	tenantHeader  = "X-Tenant"
	defaultTenant = "default"
)

func tenantName(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	return defaultTenant
}

// writeJSON encodes one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // header already written; nothing useful to do on error
}

// writeErr writes a structured error response; stats, when non-nil, bills
// the work the failed evaluation accrued.
func writeErr(w http.ResponseWriter, status int, code, msg, tenant string, stats *datalog.Stats) {
	writeJSON(w, status, errorBody{
		Error: &WireError{Code: code, Message: msg, Tenant: tenant},
		Stats: stats,
	})
}

// decodeBody decodes a JSON request body under the tenant's size cap,
// classifying oversize and malformed bodies.
func decodeBody(w http.ResponseWriter, r *http.Request, limits Limits, v any) *WireError {
	capBytes := limits.MaxBodyBytes
	if capBytes <= 0 {
		capBytes = defaultMaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, capBytes)
	dec := json.NewDecoder(r.Body)
	dec.UseNumber() // keep integers exact: JSON numbers become json.Number
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &WireError{Code: CodeTooLarge, Message: fmt.Sprintf("request body exceeds the %d-byte cap", tooBig.Limit)}
		}
		return &WireError{Code: CodeBadRequest, Message: "malformed JSON body: " + err.Error()}
	}
	return nil
}

// constantArgs converts wire arguments (JSON strings and integers) into the
// ...any form RunCtx and Txn.Assert accept.
func constantArgs(args []any) ([]any, error) {
	out := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case string:
			out[i] = v
		case json.Number:
			n, err := strconv.ParseInt(v.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("argument %d: %q is not a symbol or integer", i, v.String())
			}
			out[i] = n
		case float64: // a decoder without UseNumber (e.g. query-param paths never hit this)
			n := int64(v)
			if float64(n) != v {
				return nil, fmt.Errorf("argument %d: %v is not an integer", i, v)
			}
			out[i] = n
		default:
			return nil, fmt.Errorf("argument %d: unsupported type %T (want string or integer)", i, a)
		}
	}
	return out, nil
}

// jsonRow converts one typed answer row to its wire shape: integers as JSON
// numbers, symbols as JSON strings, compound terms rendered in source
// syntax.
func jsonRow(row datalog.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		if n, ok := v.Int(); ok {
			out[i] = n
		} else if s, ok := v.Symbol(); ok {
			out[i] = s
		} else {
			out[i] = v.String()
		}
	}
	return out
}

// evalFailure classifies an evaluation error into HTTP status + wire code.
func evalFailure(err error) (int, string) {
	switch {
	case errors.Is(err, datalog.ErrLimitExceeded):
		return http.StatusUnprocessableEntity, CodeLimitExceeded
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return http.StatusBadRequest, CodeCanceled
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// handlePrograms compiles and registers an uploaded program.
func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r)
	tn := s.adm.tenantFor(tenant)
	release, err := tn.admit()
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, CodeOverCapacity, err.Error(), tenant, nil)
		return
	}
	defer release()
	var req ProgramRequest
	if werr := decodeBody(w, r, tn.limits, &req); werr != nil {
		writeErr(w, statusOf(werr.Code), werr.Code, werr.Message, tenant, nil)
		return
	}
	if req.Source == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "source is required", tenant, nil)
		return
	}
	resp, err := s.LoadProgram(req.Source, req.Strict, req.Activate)
	if err != nil {
		code, status := CodeCompileFailed, http.StatusUnprocessableEntity
		if len(s.programs) >= maxPrograms {
			code, status = CodeOverCapacity, http.StatusTooManyRequests
		}
		writeErr(w, status, code, err.Error(), tenant, nil)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusOf maps a decode-stage wire code to its HTTP status.
func statusOf(code string) int {
	if code == CodeTooLarge {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handlePrepare compiles a query form against a registered program and
// registers the handle.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r)
	tn := s.adm.tenantFor(tenant)
	release, err := tn.admit()
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, CodeOverCapacity, err.Error(), tenant, nil)
		return
	}
	defer release()
	var req PrepareRequest
	if werr := decodeBody(w, r, tn.limits, &req); werr != nil {
		writeErr(w, statusOf(werr.Code), werr.Code, werr.Message, tenant, nil)
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "query is required", tenant, nil)
		return
	}
	entry, err := s.programFor(req.ProgramID)
	if err != nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, err.Error(), tenant, nil)
		return
	}
	// Vet the form before compiling it: error-severity findings (bad query
	// predicate, wrong arity) refuse the preparation; warnings — including
	// the Section 10 divergence prediction — ride along in the response.
	diags, err := entry.prog.DiagnosticsFor(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
		return
	}
	for _, d := range diags {
		if d.Severity == datalog.SeverityError {
			writeErr(w, http.StatusUnprocessableEntity, CodeBadRequest,
				fmt.Sprintf("query form rejected: %s", d), tenant, nil)
			return
		}
	}
	// Warm the program's form cache so the first /v1/query run of this
	// handle only evaluates: parse → adorn → rewrite → compile happen here.
	if _, err := s.db.Snapshot().With(entry.prog).Prepare(req.Query, req.Options); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
		return
	}
	id, err := s.registerPrepared(entry.id, entry.prog, req.Query, req.Options)
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, CodeOverCapacity, err.Error(), tenant, nil)
		return
	}
	writeJSON(w, http.StatusOK, PrepareResponse{
		PreparedID:  id,
		ProgramID:   entry.id,
		Diagnostics: diags,
	})
}

// resolveEntry turns one QueryEntry into the program, query text and
// effective options to run: a prepared handle (with optional run-time
// option overrides) or an ad-hoc query against a named/default program.
func (s *Server) resolveEntry(entry QueryEntry) (prog *datalog.Program, query string, opts datalog.Options, werr *WireError) {
	if entry.PreparedID != "" {
		if entry.Query != "" {
			return nil, "", opts, &WireError{Code: CodeBadRequest, Message: "give prepared_id or query, not both"}
		}
		pe, err := s.preparedFor(entry.PreparedID)
		if err != nil {
			return nil, "", opts, &WireError{Code: CodeNotFound, Message: err.Error()}
		}
		opts = pe.opts
		if entry.Options != nil {
			// Run-time limits may be tightened per call; the form-shaping
			// fields are fixed at prepare time.
			o := entry.Options
			if o.Strategy != "" || o.Sip != "" || o.Semijoin || o.KeepAllGuards || o.Simplify || o.OnDivergence != "" {
				return nil, "", opts, &WireError{Code: CodeBadRequest,
					Message: "options on a prepared_id entry may set only run-time fields (max_*, first_n, parallelism, no_materialize)"}
			}
			if o.MaxIterations > 0 {
				opts.MaxIterations = o.MaxIterations
			}
			if o.MaxFacts > 0 {
				opts.MaxFacts = o.MaxFacts
			}
			if o.MaxDerivations > 0 {
				opts.MaxDerivations = o.MaxDerivations
			}
			if o.FirstN > 0 {
				opts.FirstN = o.FirstN
			}
			if o.Parallelism > 0 {
				opts.Parallelism = o.Parallelism
			}
			if o.NoMaterialize {
				opts.NoMaterialize = true
			}
		}
		return pe.prog, pe.query, opts, nil
	}
	if entry.Query == "" {
		return nil, "", opts, &WireError{Code: CodeBadRequest, Message: "entry needs a prepared_id or a query"}
	}
	pentry, err := s.programFor(entry.ProgramID)
	if err != nil {
		return nil, "", opts, &WireError{Code: CodeNotFound, Message: err.Error()}
	}
	if entry.Options != nil {
		opts = *entry.Options
	}
	return pentry.prog, entry.Query, opts, nil
}

// runEntry evaluates one entry against the pinned snapshot.
func (s *Server) runEntry(ctx context.Context, snap *datalog.Snapshot, entry QueryEntry, tn *tenant) (QueryResult, int) {
	prog, query, opts, werr := s.resolveEntry(entry)
	if werr != nil {
		status := http.StatusBadRequest
		if werr.Code == CodeNotFound {
			status = http.StatusNotFound
		}
		return QueryResult{Error: werr}, status
	}
	tn.limits.clampOptions(&opts)
	pq, err := snap.With(prog).Prepare(query, opts)
	if err != nil {
		return QueryResult{Error: &WireError{Code: CodeBadRequest, Message: err.Error()}}, http.StatusBadRequest
	}
	args, err := constantArgs(entry.Args)
	if err != nil {
		return QueryResult{Error: &WireError{Code: CodeBadRequest, Message: err.Error()}}, http.StatusBadRequest
	}
	res, err := pq.RunCtx(ctx, args...)
	tn.queries.Add(1)
	result := QueryResult{Answers: [][]any{}}
	if res != nil {
		result.Stats = res.Stats
		for _, a := range res.Answers {
			result.Answers = append(result.Answers, jsonRow(a.Vals))
		}
	}
	if err != nil {
		status, code := evalFailure(err)
		if code == CodeLimitExceeded || code == CodeDeadlineExceeded {
			tn.limitExceeded.Add(1)
		}
		result.Error = &WireError{Code: code, Message: err.Error(), Tenant: tn.name}
		return result, status
	}
	return result, http.StatusOK
}

// handleQuery runs one query or a batch, every entry against the same
// snapshot pinned here, at admission.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r)
	tn := s.adm.tenantFor(tenant)
	release, err := tn.admit()
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, CodeOverCapacity, err.Error(), tenant, nil)
		return
	}
	defer release()
	var req QueryRequest
	if werr := decodeBody(w, r, tn.limits, &req); werr != nil {
		writeErr(w, statusOf(werr.Code), werr.Code, werr.Message, tenant, nil)
		return
	}
	entries := req.Batch
	single := len(entries) == 0
	if single {
		entries = []QueryEntry{req.QueryEntry}
	} else if req.PreparedID != "" || req.Query != "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "give a single entry or a batch, not both", tenant, nil)
		return
	}

	ctx, cancel := tn.limits.requestContext(r.Context(), time.Duration(req.TimeoutMillis)*time.Millisecond)
	defer cancel()

	// The consistency pin: one snapshot per request, taken after admission,
	// read by every entry. Concurrent commits and program uploads cannot
	// tear the response.
	snap := s.db.Snapshot()

	resp := QueryResponse{Version: snap.Version(), Results: make([]QueryResult, 0, len(entries))}
	for _, entry := range entries {
		result, status := s.runEntry(ctx, snap, entry, tn)
		if single && result.Error != nil {
			// A single query surfaces its failure as the response status;
			// batches report per-entry errors inline under a 200.
			var stats *datalog.Stats
			if result.Stats.Strategy != "" {
				stats = &result.Stats
			}
			writeErr(w, status, result.Error.Code, result.Error.Message, tenant, stats)
			return
		}
		resp.Results = append(resp.Results, result)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStream runs one query and streams its rows as NDJSON, backed by
// PreparedQuery.Stream: rows are yielded in discovery order and FirstN cuts
// the evaluation itself short. The snapshot pin and admission rules are the
// same as /v1/query.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r)
	tn := s.adm.tenantFor(tenant)
	release, err := tn.admit()
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, CodeOverCapacity, err.Error(), tenant, nil)
		return
	}
	defer release()

	q := r.URL.Query()
	entry := QueryEntry{
		PreparedID: q.Get("prepared_id"),
		ProgramID:  q.Get("program_id"),
		Query:      q.Get("query"),
	}
	for _, a := range q["args"] {
		// Integer-looking parameters are integer constants; a Datalog symbol
		// can never lex as an integer, so the coercion is unambiguous.
		if n, err := strconv.ParseInt(a, 10, 64); err == nil {
			entry.Args = append(entry.Args, json.Number(strconv.FormatInt(n, 10)))
		} else {
			entry.Args = append(entry.Args, a)
		}
	}
	var asked time.Duration
	if ms := q.Get("timeout_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "timeout_ms must be a non-negative integer", tenant, nil)
			return
		}
		asked = time.Duration(n) * time.Millisecond
	}
	prog, query, opts, werr := s.resolveEntry(entry)
	if werr != nil {
		status := http.StatusBadRequest
		if werr.Code == CodeNotFound {
			status = http.StatusNotFound
		}
		writeErr(w, status, werr.Code, werr.Message, tenant, nil)
		return
	}
	if fn := q.Get("first_n"); fn != "" {
		n, err := strconv.Atoi(fn)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "first_n must be a non-negative integer", tenant, nil)
			return
		}
		opts.FirstN = n
	}
	tn.limits.clampOptions(&opts)
	args, err := constantArgs(entry.Args)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
		return
	}

	ctx, cancel := tn.limits.requestContext(r.Context(), asked)
	defer cancel()
	snap := s.db.Snapshot() // the pin: every streamed row reads this version
	pq, err := snap.With(prog).Prepare(query, opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
		return
	}

	tn.streams.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	rows := 0
	for row, err := range pq.Stream(ctx, args...) {
		if err != nil {
			_, code := evalFailure(err)
			if code == CodeLimitExceeded || code == CodeDeadlineExceeded {
				tn.limitExceeded.Add(1)
			}
			_ = enc.Encode(StreamEvent{Error: &WireError{Code: code, Message: err.Error(), Tenant: tenant}})
			return
		}
		if encErr := enc.Encode(StreamEvent{Row: jsonRow(row)}); encErr != nil {
			return // client went away; Stream released its locks before yielding
		}
		rows++
		tn.rowsStreamed.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(StreamEvent{Done: true, Rows: rows, Version: snap.Version()})
}

// handleTxn applies one atomic batch write.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	tenant := tenantName(r)
	tn := s.adm.tenantFor(tenant)
	release, err := tn.admit()
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, CodeOverCapacity, err.Error(), tenant, nil)
		return
	}
	defer release()
	var req TxnRequest
	if werr := decodeBody(w, r, tn.limits, &req); werr != nil {
		writeErr(w, statusOf(werr.Code), werr.Code, werr.Message, tenant, nil)
		return
	}
	txn := s.db.Begin()
	defer txn.Rollback() // no-op after a successful commit
	buffer := func(facts []Fact, op func(pred string, args ...any) error) error {
		for _, f := range facts {
			args, err := constantArgs(f.Args)
			if err != nil {
				return fmt.Errorf("%s: %w", f.Pred, err)
			}
			if err := op(f.Pred, args...); err != nil {
				return err
			}
		}
		return nil
	}
	if err := buffer(req.Retracts, txn.Retract); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
		return
	}
	if err := buffer(req.Asserts, txn.Assert); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
		return
	}
	if req.RetractText != "" {
		if err := txn.RetractText(req.RetractText); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
			return
		}
	}
	if req.AssertText != "" {
		if err := txn.AssertText(req.AssertText); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, err.Error(), tenant, nil)
			return
		}
	}
	asserts, retracts := txn.Pending()
	if err := txn.Commit(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeBadRequest, err.Error(), tenant, nil)
		return
	}
	tn.txns.Add(1)
	writeJSON(w, http.StatusOK, TxnResponse{
		Version:  s.db.Version(),
		Asserts:  asserts,
		Retracts: retracts,
	})
}

// handleStats reports the server's counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	programs, prepared, def := len(s.programs), len(s.prepared), s.defaultProgram
	s.mu.RUnlock()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Database: DatabaseStats{
			Version:    s.db.Version(),
			TotalFacts: s.db.TotalFacts(),
		},
		Programs:       programs,
		Prepared:       prepared,
		DefaultProgram: def,
		Tenants:        s.adm.statsByTenant(),
	}
	if ds, ok := s.db.DurabilityStats(); ok {
		resp.Durability = &ds
	}
	writeJSON(w, http.StatusOK, resp)
}
