// Package server is the network serving layer over the datalog engine:
// an HTTP/JSON server exposing the prepare-once/run-many protocol that the
// paper's program/query split makes natural (see wire.go for the protocol,
// admission.go for the per-tenant control plane, handlers.go for the
// endpoints).
//
// # Snapshot-pinned reads
//
// The server's one consistency invariant: every read request pins a
// database Snapshot at admission time and answers entirely from it. All
// entries of a batch query, and every row of a stream, observe exactly one
// commit version — concurrent transactions and program uploads can never
// tear a response. The pin is O(#relations) and lock-free to read, so the
// invariant costs microseconds, not a lock hold.
//
// # Programs and prepared statements
//
// Uploaded programs are compiled once (with the full static-analysis
// suite) into immutable datalog.Programs and registered under stable ids;
// prepared statements bind a query form to a program and warm the
// program's form cache, so each /v1/query run of a prepared handle only
// parameterizes seeds and evaluates. Both registries are bounded
// (over_capacity past the cap) because registration is a resource grant,
// not a cache.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/datalog"
)

// Registry caps: uploads past these are rejected with over_capacity. A
// registration pins compiled rules (programs) or a warmed query form
// (prepared statements) for the life of the process, so both are admission
// decisions, not cache policy.
const (
	maxPrograms = 64
	maxPrepared = 1024
)

// Config configures a Server.
type Config struct {
	// DefaultLimits applies to every tenant without an override; the zero
	// value admits everything.
	DefaultLimits Limits
	// TenantLimits overrides the defaults per tenant name.
	TenantLimits map[string]Limits
}

// defaultMaxBody caps request bodies when the tenant's limits do not: even
// an unlimited tenant should not be able to buffer an arbitrarily large
// upload into memory.
const defaultMaxBody = 8 << 20

// programEntry is one registered program.
type programEntry struct {
	id     string
	prog   *datalog.Program
	source string
}

// preparedEntry is one registered prepared statement: the program it is
// bound to and the form-shaping options it was prepared with. The compiled
// artifacts live in the program's form cache; each run re-binds the form to
// the request's pinned snapshot.
type preparedEntry struct {
	id        string
	programID string
	prog      *datalog.Program
	query     string
	opts      datalog.Options
}

// Server serves the /v1 protocol over one datalog.Database. Create with
// New, mount Handler on an http.Server. A Server is safe for concurrent
// use; all state beyond the database itself is the two registries and the
// admission counters.
type Server struct {
	db  *datalog.Database
	adm *admission

	mu             sync.RWMutex
	programs       map[string]*programEntry
	prepared       map[string]*preparedEntry
	programSeq     uint64
	preparedSeq    uint64
	defaultProgram string

	start time.Time
}

// New creates a Server over db. The database may be shared with in-process
// writers; the snapshot-pinning invariant holds regardless of who commits.
func New(db *datalog.Database, cfg Config) *Server {
	return &Server{
		db:       db,
		adm:      newAdmission(cfg.DefaultLimits, cfg.TenantLimits),
		programs: make(map[string]*programEntry),
		prepared: make(map[string]*preparedEntry),
		start:    time.Now(),
	}
}

// Database returns the server's underlying database (the load path of
// cmd/datalogd seeds facts through it).
func (s *Server) Database() *datalog.Database { return s.db }

// LoadProgram compiles and registers a program exactly as POST /v1/programs
// would, for boot-time loading (cmd/datalogd -program). When activate is
// set (or no default exists yet) it becomes the default program.
func (s *Server) LoadProgram(source string, strict, activate bool) (*ProgramResponse, error) {
	compile := datalog.Compile
	if strict {
		compile = datalog.CompileStrict
	}
	prog, err := compile(source)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.programs) >= maxPrograms {
		return nil, fmt.Errorf("program registry is full (%d programs)", maxPrograms)
	}
	s.programSeq++
	entry := &programEntry{
		id:     fmt.Sprintf("p%d", s.programSeq),
		prog:   prog,
		source: source,
	}
	s.programs[entry.id] = entry
	if activate || s.defaultProgram == "" {
		s.defaultProgram = entry.id
	}
	return &ProgramResponse{
		ProgramID:   entry.id,
		Rules:       prog.Rules(),
		Default:     s.defaultProgram == entry.id,
		Diagnostics: prog.Diagnostics(),
	}, nil
}

// programFor resolves a program id ("" means the default program).
func (s *Server) programFor(id string) (*programEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id == "" {
		id = s.defaultProgram
		if id == "" {
			return nil, fmt.Errorf("no program_id given and no default program is loaded")
		}
	}
	entry, ok := s.programs[id]
	if !ok {
		return nil, fmt.Errorf("unknown program_id %q", id)
	}
	return entry, nil
}

// registerPrepared stores a prepared statement and returns its id.
func (s *Server) registerPrepared(programID string, prog *datalog.Program, query string, opts datalog.Options) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.prepared) >= maxPrepared {
		return "", fmt.Errorf("prepared-statement registry is full (%d statements)", maxPrepared)
	}
	s.preparedSeq++
	id := fmt.Sprintf("q%d", s.preparedSeq)
	s.prepared[id] = &preparedEntry{
		id:        id,
		programID: programID,
		prog:      prog,
		query:     query,
		opts:      opts,
	}
	return id, nil
}

// preparedFor resolves a prepared-statement id.
func (s *Server) preparedFor(id string) (*preparedEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entry, ok := s.prepared[id]
	if !ok {
		return nil, fmt.Errorf("unknown prepared_id %q", id)
	}
	return entry, nil
}

// Handler returns the server's HTTP handler, one route per protocol verb.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", s.handlePrograms)
	mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/query/stream", s.handleStream)
	mux.HandleFunc("POST /v1/txn", s.handleTxn)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
