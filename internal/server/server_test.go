package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/datalog"
)

const ancProgram = `
	anc(X, Y) :- par(X, Y).
	anc(X, Y) :- par(X, Z), anc(Z, Y).
`

// doJSON posts body to url and decodes the response into out (when non-nil),
// returning the HTTP status.
func doJSON(t *testing.T, method, url, tenant string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(datalog.NewDatabase(), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestServerEndToEnd walks the whole protocol: upload, seed, prepare, run,
// parameterize, batch, stream, stats.
func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var prog ProgramResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/programs", "", ProgramRequest{Source: ancProgram}, &prog); st != http.StatusOK {
		t.Fatalf("programs: status %d", st)
	}
	if prog.ProgramID != "p1" || prog.Rules != 2 || !prog.Default {
		t.Fatalf("programs: %+v", prog)
	}

	var txn TxnResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/txn", "", TxnRequest{
		AssertText: "par(john, mary). par(mary, sue).",
		Asserts:    []Fact{{Pred: "par", Args: []any{"sue", "ann"}}},
	}, &txn); st != http.StatusOK {
		t.Fatalf("txn: status %d", st)
	}
	if txn.Asserts != 3 || txn.Version == 0 {
		t.Fatalf("txn: %+v", txn)
	}

	var prep PrepareResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/prepare", "", PrepareRequest{Query: "anc(john, Y)"}, &prep); st != http.StatusOK {
		t.Fatalf("prepare: status %d", st)
	}
	if prep.PreparedID != "q1" || prep.ProgramID != "p1" {
		t.Fatalf("prepare: %+v", prep)
	}

	// Run the prepared handle: john's descendants are mary, sue, ann.
	var qr QueryResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{
		QueryEntry: QueryEntry{PreparedID: "q1"},
	}, &qr); st != http.StatusOK {
		t.Fatalf("query: status %d", st)
	}
	if len(qr.Results) != 1 || len(qr.Results[0].Answers) != 3 {
		t.Fatalf("query: %+v", qr)
	}
	if qr.Results[0].Stats.Strategy == "" {
		t.Error("query result should carry evaluation stats")
	}
	if qr.Version == 0 {
		t.Error("query response should carry the pinned snapshot version")
	}

	// Parameterize the same handle: args replace the form's bound constant.
	qr = QueryResponse{}
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{
		QueryEntry: QueryEntry{PreparedID: "q1", Args: []any{"mary"}},
	}, &qr); st != http.StatusOK {
		t.Fatalf("parameterized query: status %d", st)
	}
	if len(qr.Results[0].Answers) != 2 { // sue, ann
		t.Fatalf("parameterized query: %+v", qr.Results[0])
	}

	// Ad-hoc entry against the default program, plus a batch.
	qr = QueryResponse{}
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{
		Batch: []QueryEntry{
			{Query: "anc(X, ann)"},
			{PreparedID: "q1", Options: &datalog.Options{FirstN: 1}},
		},
	}, &qr); st != http.StatusOK {
		t.Fatalf("batch: status %d", st)
	}
	if len(qr.Results) != 2 {
		t.Fatalf("batch: %+v", qr)
	}
	if len(qr.Results[0].Answers) != 3 { // john, mary, sue
		t.Errorf("batch entry 0: %+v", qr.Results[0])
	}
	if len(qr.Results[1].Answers) != 1 {
		t.Errorf("batch entry 1 should honor FirstN=1: %+v", qr.Results[1])
	}

	// Stream the handle as NDJSON: rows then one done trailer.
	rows, trailer := readStream(t, ts.URL+"/v1/query/stream?prepared_id=q1")
	if len(rows) != 3 || !trailer.Done || trailer.Rows != 3 || trailer.Version == 0 {
		t.Fatalf("stream: rows=%d trailer=%+v", len(rows), trailer)
	}
	rows, trailer = readStream(t, ts.URL+"/v1/query/stream?prepared_id=q1&first_n=2")
	if len(rows) != 2 || trailer.Rows != 2 {
		t.Fatalf("stream first_n=2: rows=%d trailer=%+v", len(rows), trailer)
	}
	// Stream args parameterize just like /v1/query args.
	rows, _ = readStream(t, ts.URL+"/v1/query/stream?prepared_id=q1&args=mary")
	if len(rows) != 2 {
		t.Fatalf("stream args=mary: rows=%d", len(rows))
	}

	var stats StatsResponse
	if st := doJSON(t, "GET", ts.URL+"/v1/stats", "", nil, &stats); st != http.StatusOK {
		t.Fatalf("stats: status %d", st)
	}
	if stats.Database.TotalFacts != 3 || stats.Programs != 1 || stats.Prepared != 1 {
		t.Errorf("stats: %+v", stats)
	}
	def := stats.Tenants["default"]
	if def.Queries < 4 || def.Streams != 3 || def.Txns != 1 || def.RowsStreamed != 7 {
		t.Errorf("default tenant counters: %+v", def)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}

// readStream consumes one NDJSON stream, returning the row events and the
// terminal event.
func readStream(t *testing.T, url string) (rows []StreamEvent, terminal StreamEvent) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s: status %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if ev.Done || ev.Error != nil {
			return rows, ev
		}
		rows = append(rows, ev)
	}
	t.Fatal("stream ended without a terminal event")
	return nil, StreamEvent{}
}

// TestServerErrors pins the protocol's failure modes: codes, statuses, and
// the rule that rejected work still reports the stats it accrued.
func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TenantLimits: map[string]Limits{
			"metered": {MaxDerivations: 10000},
			"tiny":    {MaxBodyBytes: 64},
			"rushed":  {Timeout: time.Millisecond},
		},
	})

	var errResp struct {
		Error *WireError     `json:"error"`
		Stats *datalog.Stats `json:"stats"`
	}
	check := func(what string, gotStatus, wantStatus int, wantCode string) {
		t.Helper()
		if gotStatus != wantStatus {
			t.Errorf("%s: status %d, want %d (error: %+v)", what, gotStatus, wantStatus, errResp.Error)
		}
		if errResp.Error == nil || errResp.Error.Code != wantCode {
			t.Errorf("%s: error %+v, want code %q", what, errResp.Error, wantCode)
		}
		errResp.Error, errResp.Stats = nil, nil
	}

	// No program loaded yet: queries cannot resolve a default.
	st := doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{QueryEntry: QueryEntry{Query: "anc(X, Y)"}}, &errResp)
	check("query without a program", st, http.StatusNotFound, CodeNotFound)

	st = doJSON(t, "POST", ts.URL+"/v1/programs", "", ProgramRequest{Source: "anc(X :-"}, &errResp)
	check("malformed program", st, http.StatusUnprocessableEntity, CodeCompileFailed)

	if st := doJSON(t, "POST", ts.URL+"/v1/programs", "", ProgramRequest{Source: ancProgram}, nil); st != http.StatusOK {
		t.Fatalf("programs: status %d", st)
	}
	seed := strings.Builder{}
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&seed, "par(n%d, n%d). ", i, i+1)
	}
	if st := doJSON(t, "POST", ts.URL+"/v1/txn", "", TxnRequest{AssertText: seed.String()}, nil); st != http.StatusOK {
		t.Fatalf("txn: status %d", st)
	}

	st = doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{QueryEntry: QueryEntry{PreparedID: "q99"}}, &errResp)
	check("unknown prepared_id", st, http.StatusNotFound, CodeNotFound)

	st = doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{QueryEntry: QueryEntry{ProgramID: "p99", Query: "anc(X, Y)"}}, &errResp)
	check("unknown program_id", st, http.StatusNotFound, CodeNotFound)

	st = doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{}, &errResp)
	check("empty entry", st, http.StatusBadRequest, CodeBadRequest)

	st = doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{
		QueryEntry: QueryEntry{Query: "anc(X, Y)", Options: &datalog.Options{FirstN: -1}},
	}, &errResp)
	check("negative FirstN", st, http.StatusBadRequest, CodeBadRequest)

	st = doJSON(t, "POST", ts.URL+"/v1/prepare", "", PrepareRequest{Query: "nosuch(X)"}, &errResp)
	check("prepare against unknown predicate", st, http.StatusUnprocessableEntity, CodeBadRequest)

	var prep PrepareResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/prepare", "", PrepareRequest{Query: "anc(n0, Y)"}, &prep); st != http.StatusOK {
		t.Fatalf("prepare: status %d", st)
	}
	st = doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{
		QueryEntry: QueryEntry{PreparedID: prep.PreparedID, Options: &datalog.Options{Strategy: datalog.Naive}},
	}, &errResp)
	check("form-shaping option on a prepared handle", st, http.StatusBadRequest, CodeBadRequest)

	// The derivation-gas rejection must bill the work it accrued.
	st = doJSON(t, "POST", ts.URL+"/v1/query", "metered", QueryRequest{QueryEntry: QueryEntry{Query: "anc(X, Y)"}}, &errResp)
	if st != http.StatusUnprocessableEntity || errResp.Error == nil || errResp.Error.Code != CodeLimitExceeded {
		t.Fatalf("gas rejection: status %d, error %+v", st, errResp.Error)
	}
	if errResp.Error.Tenant != "metered" {
		t.Errorf("gas rejection should name the tenant: %+v", errResp.Error)
	}
	if errResp.Stats == nil || errResp.Stats.Derivations == 0 {
		t.Errorf("gas rejection should carry the accrued stats, got %+v", errResp.Stats)
	}
	errResp.Error, errResp.Stats = nil, nil

	// In a batch, the failing entry reports inline and the rest still answer.
	var qr QueryResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "metered", QueryRequest{
		Batch: []QueryEntry{{Query: "anc(X, Y)"}, {Query: "anc(n0, Y)", Options: &datalog.Options{FirstN: 1}}},
	}, &qr); st != http.StatusOK {
		t.Fatalf("batch with failing entry: status %d", st)
	}
	if qr.Results[0].Error == nil || qr.Results[0].Error.Code != CodeLimitExceeded {
		t.Errorf("batch entry 0 should fail on gas: %+v", qr.Results[0].Error)
	}
	if qr.Results[1].Error != nil || len(qr.Results[1].Answers) != 1 {
		t.Errorf("batch entry 1 should still answer: %+v", qr.Results[1])
	}

	// Wall-clock timeout (tenant-bound): a 1ms budget cannot close a 400-node
	// transitive closure (~160k derivations) on this engine.
	st = doJSON(t, "POST", ts.URL+"/v1/query", "rushed", QueryRequest{QueryEntry: QueryEntry{Query: "anc(X, Y)"}}, &errResp)
	check("tenant timeout", st, http.StatusGatewayTimeout, CodeDeadlineExceeded)

	// Request-size cap.
	st = doJSON(t, "POST", ts.URL+"/v1/txn", "tiny", TxnRequest{AssertText: seed.String()}, &errResp)
	check("oversized body", st, http.StatusRequestEntityTooLarge, CodeTooLarge)

	// Malformed JSON body.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader("{nope"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	check("malformed JSON", resp.StatusCode, http.StatusBadRequest, CodeBadRequest)

	// Limit hits were counted against the tenant.
	var stats StatsResponse
	if st := doJSON(t, "GET", ts.URL+"/v1/stats", "", nil, &stats); st != http.StatusOK {
		t.Fatalf("stats: status %d", st)
	}
	if m := stats.Tenants["metered"]; m.LimitExceeded == 0 {
		t.Errorf("metered tenant should have recorded limit hits: %+v", m)
	}
}

// TestConcurrencyLimitEnforced pins the admission semaphore end to end,
// deterministically: a request that stalls mid-body holds its tenant slot,
// so a concurrent request from the same tenant is rejected with 429 while
// any other tenant sails through; closing the stalled connection frees the
// slot.
func TestConcurrencyLimitEnforced(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TenantLimits: map[string]Limits{"locked": {MaxConcurrent: 1}},
	})
	if st := doJSON(t, "POST", ts.URL+"/v1/programs", "", ProgramRequest{Source: ancProgram}, nil); st != http.StatusOK {
		t.Fatal("programs failed")
	}

	// A raw connection that sends headers plus half a body, then stalls: the
	// handler admits (taking the slot) and blocks decoding the body.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/txn HTTP/1.1\r\nHost: t\r\nX-Tenant: locked\r\nContent-Type: application/json\r\nContent-Length: 100\r\n\r\n{")

	waitActive := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			var stats StatsResponse
			doJSON(t, "GET", ts.URL+"/v1/stats", "", nil, &stats)
			if stats.Tenants["locked"].Active == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("locked tenant never reached active=%d", want)
	}
	waitActive(1)

	var errResp errorBody
	st := doJSON(t, "POST", ts.URL+"/v1/query", "locked", QueryRequest{QueryEntry: QueryEntry{Query: "anc(X, Y)"}}, &errResp)
	if st != http.StatusTooManyRequests || errResp.Error == nil || errResp.Error.Code != CodeOverCapacity {
		t.Fatalf("locked tenant at capacity: status %d, error %+v", st, errResp.Error)
	}
	if errResp.Error.Tenant != "locked" {
		t.Errorf("rejection should name the tenant: %+v", errResp.Error)
	}

	// Admission is per tenant: the default tenant is unaffected.
	var qr QueryResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{QueryEntry: QueryEntry{Query: "anc(X, Y)"}}, &qr); st != http.StatusOK {
		t.Fatalf("default tenant should be admitted: status %d", st)
	}

	// Freeing the stalled request frees the slot.
	conn.Close()
	waitActive(0)
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "locked", QueryRequest{QueryEntry: QueryEntry{Query: "anc(X, Y)"}}, nil); st != http.StatusOK {
		t.Fatalf("locked tenant after release: status %d", st)
	}
}

// TestServingMutualConsistency is the acceptance test: concurrent clients
// read through the server while a writer commits facts in atomic pairs
// {a(i), b(i)}. Every batch response must observe the pair invariant —
// equally many a-rows and b-rows — because both entries run against the one
// snapshot pinned at request admission. A torn read (entry 2 seeing a commit
// entry 1 missed) would break the count equality immediately.
func TestServingMutualConsistency(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if st := doJSON(t, "POST", ts.URL+"/v1/programs", "", ProgramRequest{
		Source: "qa(X) :- a(X). qb(X) :- b(X).",
	}, nil); st != http.StatusOK {
		t.Fatal("programs failed")
	}

	const commits = 150
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < commits; i++ {
			var txr TxnResponse
			st := doJSON(t, "POST", ts.URL+"/v1/txn", "writer", TxnRequest{Asserts: []Fact{
				{Pred: "a", Args: []any{fmt.Sprintf("k%d", i)}},
				{Pred: "b", Args: []any{fmt.Sprintf("k%d", i)}},
			}}, &txr)
			if st != http.StatusOK {
				t.Errorf("txn %d: status %d", i, st)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tenant := fmt.Sprintf("reader%d", r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var qr QueryResponse
				st := doJSON(t, "POST", ts.URL+"/v1/query", tenant, QueryRequest{
					Batch: []QueryEntry{{Query: "qa(X)"}, {Query: "qb(X)"}},
				}, &qr)
				if st != http.StatusOK {
					t.Errorf("%s: status %d", tenant, st)
					return
				}
				na, nb := len(qr.Results[0].Answers), len(qr.Results[1].Answers)
				if na != nb {
					t.Errorf("%s: torn read at version %d: %d a-rows vs %d b-rows", tenant, qr.Version, na, nb)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// After the writer is done, a final read sees every pair.
	var qr QueryResponse
	if st := doJSON(t, "POST", ts.URL+"/v1/query", "", QueryRequest{
		Batch: []QueryEntry{{Query: "qa(X)"}, {Query: "qb(X)"}},
	}, &qr); st != http.StatusOK {
		t.Fatalf("final read: status %d", st)
	}
	if len(qr.Results[0].Answers) != commits || len(qr.Results[1].Answers) != commits {
		t.Fatalf("final read: %d/%d rows, want %d/%d",
			len(qr.Results[0].Answers), len(qr.Results[1].Answers), commits, commits)
	}
}

// TestStreamPinsSnapshot drives the same invariant through the NDJSON
// stream: the trailer's version is the pinned version, and the row count
// matches a point-in-time count even with commits landing mid-stream.
func TestStreamPinsSnapshot(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if st := doJSON(t, "POST", ts.URL+"/v1/programs", "", ProgramRequest{Source: "qa(X) :- a(X)."}, nil); st != http.StatusOK {
		t.Fatal("programs failed")
	}
	if st := doJSON(t, "POST", ts.URL+"/v1/txn", "", TxnRequest{
		Asserts: []Fact{{Pred: "a", Args: []any{"k0"}}, {Pred: "a", Args: []any{"k1"}}},
	}, nil); st != http.StatusOK {
		t.Fatal("txn failed")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn commits while streams run, bounded to keep the EDB small
		defer wg.Done()
		for i := 2; i < 500; i++ {
			select {
			case <-stop:
				return
			default:
			}
			txn := s.Database().Begin()
			_ = txn.Assert("a", fmt.Sprintf("k%d", i))
			if err := txn.Commit(); err != nil {
				t.Error(err)
				return
			}
			runtime.Gosched()
		}
	}()
	for i := 0; i < 10; i++ {
		rows, trailer := readStream(t, ts.URL+"/v1/query/stream?query="+`qa(X)`)
		if trailer.Error != nil {
			t.Fatalf("stream error: %+v", trailer.Error)
		}
		snapRows := s.Database().TotalFacts() // grows monotonically; lower bound is the pinned count
		if len(rows) != trailer.Rows || trailer.Rows > snapRows {
			t.Fatalf("stream %d: %d rows, trailer %+v, facts now %d", i, len(rows), trailer, snapRows)
		}
	}
	close(stop)
	wg.Wait()
}
