// Wire types of the /v1 protocol served by cmd/datalogd.
//
// The protocol is prepare-once/run-many over HTTP/JSON: a client uploads a
// rule program once (POST /v1/programs), prepares each query form it will
// run repeatedly (POST /v1/prepare), then runs and streams the forms with
// per-call constants (POST /v1/query, GET /v1/query/stream) and writes
// facts through atomic transactions (POST /v1/txn). Field names here — like
// the json tags on datalog.Options, datalog.Stats and datalog.Diagnostic
// they embed — are a stable contract: add fields, never rename them.
package server

import (
	"repro/datalog"
)

// WireError is the structured error of every non-2xx response (and of
// per-entry failures inside a batch): a stable machine-matchable code plus
// a human message. Admission rejections carry the tenant they were
// accounted to.
type WireError struct {
	// Code is one of: bad_request, not_found, compile_failed,
	// over_capacity, limit_exceeded, deadline_exceeded, canceled,
	// too_large, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	Tenant  string `json:"tenant,omitempty"`
}

// The WireError codes.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeCompileFailed    = "compile_failed"
	CodeOverCapacity     = "over_capacity"
	CodeLimitExceeded    = "limit_exceeded"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	CodeTooLarge         = "too_large"
	CodeInternal         = "internal"
)

// errorBody is the top-level JSON shape of an error response. Stats is
// present when the failed evaluation accrued work before hitting its limit
// or deadline — a rejected query is not a free query, and the client gets
// the bill.
type errorBody struct {
	Error *WireError     `json:"error"`
	Stats *datalog.Stats `json:"stats,omitempty"`
}

// ProgramRequest uploads a rule program. With Strict, warnings (not just
// errors) refuse the upload — the upload gate for untrusted programs. With
// Activate, the program becomes the server's default for requests that name
// no program_id.
type ProgramRequest struct {
	Source   string `json:"source"`
	Strict   bool   `json:"strict,omitempty"`
	Activate bool   `json:"activate,omitempty"`
}

// ProgramResponse describes a compiled, registered program. Diagnostics are
// the retained compile-time warnings and infos (errors fail the upload).
type ProgramResponse struct {
	ProgramID   string               `json:"program_id"`
	Rules       int                  `json:"rules"`
	Default     bool                 `json:"default,omitempty"`
	Diagnostics []datalog.Diagnostic `json:"diagnostics,omitempty"`
}

// PrepareRequest compiles one query form against a registered program —
// parse, adornment, rewriting and plan compilation happen here, once — and
// returns a handle that /v1/query and /v1/query/stream run with per-call
// constants. Options are the form-shaping evaluation options; run-time
// limits in them are kept as the handle's defaults and still clamped by the
// tenant's admission limits on every run.
type PrepareRequest struct {
	// ProgramID names the program to prepare against; empty means the
	// server's default program.
	ProgramID string          `json:"program_id,omitempty"`
	Query     string          `json:"query"`
	Options   datalog.Options `json:"options"`
}

// PrepareResponse returns the prepared-statement handle. Diagnostics are
// the query-form findings (unreachable rules, the Section 10 divergence
// prediction); error-severity findings refuse the preparation.
type PrepareResponse struct {
	PreparedID  string               `json:"prepared_id"`
	ProgramID   string               `json:"program_id"`
	Diagnostics []datalog.Diagnostic `json:"diagnostics,omitempty"`
}

// QueryEntry is one query to run: either a prepared handle plus optional
// positional Args replacing the form's bound constants, or an ad-hoc
// query text with optional Options. Ad-hoc entries pay parse (and, on a
// cold form, compile) per request; prepared entries only evaluate.
type QueryEntry struct {
	PreparedID string           `json:"prepared_id,omitempty"`
	ProgramID  string           `json:"program_id,omitempty"`
	Query      string           `json:"query,omitempty"`
	Options    *datalog.Options `json:"options,omitempty"`
	// Args replace the prepared form's bound constants positionally:
	// JSON strings become symbolic constants, JSON integers become
	// integer constants.
	Args []any `json:"args,omitempty"`
}

// QueryRequest runs one query or a batch. Every entry of one request —
// single or batch — is evaluated against the same snapshot, pinned at
// request admission: the answers are mutually consistent with each other no
// matter what commits land concurrently. TimeoutMillis bounds the whole
// request (clamped by the tenant's admission timeout).
type QueryRequest struct {
	QueryEntry
	Batch         []QueryEntry `json:"batch,omitempty"`
	TimeoutMillis int64        `json:"timeout_ms,omitempty"`
}

// QueryResult is the outcome of one entry: the typed answer tuples (symbols
// as JSON strings, integers as JSON numbers, compound terms rendered in
// source syntax) and the evaluation stats. In a batch, a failed entry
// carries its Error inline and the other entries still answer.
type QueryResult struct {
	Answers [][]any       `json:"answers"`
	Stats   datalog.Stats `json:"stats"`
	Error   *WireError    `json:"error,omitempty"`
}

// QueryResponse carries the pinned snapshot version every entry read from
// and one result per entry (a single, non-batch request has exactly one).
type QueryResponse struct {
	Version uint64        `json:"version"`
	Results []QueryResult `json:"results"`
}

// Fact is one ground fact of a transaction: predicate name plus constant
// arguments (JSON strings become symbols, JSON integers become integers).
type Fact struct {
	Pred string `json:"pred"`
	Args []any  `json:"args"`
}

// TxnRequest is an atomic batch write: retracts are applied before asserts,
// the whole batch is validated before the first write, and a failure
// anywhere leaves the database untouched. AssertText/RetractText accept
// facts in source syntax ("par(john, mary). par(mary, sue).").
type TxnRequest struct {
	Asserts     []Fact `json:"asserts,omitempty"`
	Retracts    []Fact `json:"retracts,omitempty"`
	AssertText  string `json:"assert_text,omitempty"`
	RetractText string `json:"retract_text,omitempty"`
}

// TxnResponse reports the commit: the database version after it (unchanged
// when the batch was empty) and the buffered operation counts.
type TxnResponse struct {
	Version  uint64 `json:"version"`
	Asserts  int    `json:"asserts"`
	Retracts int    `json:"retracts"`
}

// StreamEvent is one NDJSON line of GET /v1/query/stream: rows first (one
// per line, in discovery order), then exactly one terminal line — either
// done (with the total row count and the pinned snapshot version) or error.
type StreamEvent struct {
	Row     []any      `json:"row,omitempty"`
	Done    bool       `json:"done,omitempty"`
	Rows    int        `json:"rows,omitempty"`
	Version uint64     `json:"version,omitempty"`
	Error   *WireError `json:"error,omitempty"`
}

// TenantStats are the per-tenant admission-control counters of /v1/stats.
type TenantStats struct {
	Admitted      int64 `json:"admitted"`
	Rejected      int64 `json:"rejected"`
	Active        int64 `json:"active"`
	Queries       int64 `json:"queries"`
	Streams       int64 `json:"streams"`
	Txns          int64 `json:"txns"`
	RowsStreamed  int64 `json:"rows_streamed"`
	LimitExceeded int64 `json:"limit_exceeded"`
}

// DatabaseStats is the database section of /v1/stats.
type DatabaseStats struct {
	Version    uint64 `json:"version"`
	TotalFacts int    `json:"total_facts"`
}

// StatsResponse is the GET /v1/stats payload. Durability is present only
// when the server's database runs a durable backend (datalogd -data-dir):
// WAL records/bytes/fsyncs, recovery and checkpoint state
// (datalog.DurabilityStats).
type StatsResponse struct {
	UptimeSeconds  float64                  `json:"uptime_seconds"`
	Database       DatabaseStats            `json:"database"`
	Programs       int                      `json:"programs"`
	Prepared       int                      `json:"prepared"`
	DefaultProgram string                   `json:"default_program,omitempty"`
	Tenants        map[string]TenantStats   `json:"tenants"`
	Durability     *datalog.DurabilityStats `json:"durability,omitempty"`
}
