package sip

import (
	"fmt"

	"repro/internal/ast"
)

// GreedyBoundFirst returns a sip strategy that chooses the evaluation order
// of the body greedily instead of taking it left to right: at each step it
// picks the literal with the most arguments fully covered by the variables
// bound so far (preferring base literals and, among equals, the textual
// order), passes every available binding to it, and continues. Section 11 of
// the paper points out that choosing between sips is an open optimization
// problem; this strategy is the natural "bind as much as possible as early
// as possible" heuristic, and it produces full (compressed) sips over the
// greedily chosen order.
func GreedyBoundFirst() Strategy { return greedyBoundFirst{} }

type greedyBoundFirst struct{}

// Name implements Strategy.
func (greedyBoundFirst) Name() string { return "greedy-bound-first" }

// SipFor implements Strategy.
func (greedyBoundFirst) SipFor(rule ast.Rule, headAdornment ast.Adornment, derived map[string]bool) (*Graph, error) {
	if len(headAdornment) != len(rule.Head.Args) {
		return nil, fmt.Errorf("sip: adornment %q has length %d, head %s has arity %d",
			headAdornment, len(headAdornment), rule.Head, len(rule.Head.Args))
	}
	g := &Graph{Rule: rule, HeadAdornment: headAdornment}

	available := make(map[string]bool)
	for v := range g.BoundHeadVars() {
		available[v] = true
	}
	headHasBound := headAdornment.BoundCount() > 0

	chosen := []int{}
	used := make([]bool, len(rule.Body))

	for len(chosen) < len(rule.Body) {
		// The scoring and selection live in order.go (greedyPick), shared
		// with the join-pipeline compiler of internal/eval.
		best := greedyPick(rule.Body, used, available, derived)

		lit := rule.Body[best]
		if derived[lit.PredKey()] {
			// Build a full (compressed) arc over everything chosen so far.
			var tail []int
			if headHasBound {
				tail = append(tail, HeadNode)
			}
			tail = append(tail, chosen...)
			label := coveringLabel(lit, available)
			if len(label) > 0 && len(tail) > 0 {
				tail = g.pruneTail(tail, label)
				if len(tail) > 0 {
					g.Arcs = append(g.Arcs, Arc{Tail: tail, Head: best, Label: label})
				}
			}
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, v := range ast.AtomVars(lit, nil) {
			available[v] = true
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
