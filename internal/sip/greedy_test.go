package sip

import (
	"testing"

	"repro/internal/parser"
)

func TestGreedyReordersBody(t *testing.T) {
	// With X bound in the head, the textual order would evaluate big(Z, Y)
	// with nothing bound; the greedy strategy picks link(X, Z) first and
	// then passes Z to the derived literal big.
	prog := parser.MustParseProgram(`
		big(X, Y) :- edge(X, Y).
		big(X, Y) :- edge(X, Z), big(Z, Y).
		r(X, Y) :- big(Z, Y), link(X, Z).
	`)
	rule := prog.Rules[2]
	derived := prog.DerivedPredicates()

	greedy, err := GreedyBoundFirst().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Arcs) != 1 {
		t.Fatalf("arcs = %v", greedy.Arcs)
	}
	arc := greedy.Arcs[0]
	if arc.Head != 0 {
		t.Fatalf("arc should enter the big occurrence (position 0), got %d", arc.Head)
	}
	if !arc.Label["Z"] || len(arc.Label) != 1 {
		t.Errorf("label = %v, want {Z}", arc.LabelVars())
	}
	if !arc.HasTailMember(1) {
		t.Errorf("tail %v should contain link (position 1)", arc.Tail)
	}
	order, err := greedy.TotalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("total order = %v, want link before big", order)
	}

	// The full left-to-right sip cannot pass anything into big here.
	ltr, err := FullLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	if len(ltr.ArcsInto(0)) != 0 {
		t.Errorf("left-to-right sip should have no arc into big, got %v", ltr.Arcs)
	}
}

func TestGreedyMatchesLeftToRightWhenTextualOrderIsGood(t *testing.T) {
	// On the same-generation rule the textual order is already
	// bound-first, so the greedy sip coincides with the full sip.
	prog := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).
	`)
	rule := prog.Rules[1]
	derived := prog.DerivedPredicates()
	greedy, err := GreedyBoundFirst().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	if !Contains(greedy, full) || !Contains(full, greedy) {
		t.Errorf("greedy and full sips should coincide here:\n%s\nvs\n%s", greedy, full)
	}
	if GreedyBoundFirst().Name() != "greedy-bound-first" {
		t.Error("name wrong")
	}
}

func TestGreedyAdornmentMismatch(t *testing.T) {
	prog := parser.MustParseProgram(`p(X, Y) :- e(X, Y).`)
	if _, err := GreedyBoundFirst().SipFor(prog.Rules[0], "b", prog.DerivedPredicates()); err == nil {
		t.Error("adornment length mismatch must be rejected")
	}
}

func TestGreedyFreeHead(t *testing.T) {
	// With no bound head arguments the greedy strategy still produces a
	// valid sip (base literals feed the derived one).
	prog := parser.MustParseProgram(`
		q(X, Y) :- e(X, Y).
		r(X, Y) :- e(X, Z), q(Z, Y).
	`)
	rule := prog.Rules[1]
	g, err := GreedyBoundFirst().SipFor(rule, "ff", prog.DerivedPredicates())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range g.Arcs {
		if a.HasTailMember(HeadNode) {
			t.Errorf("head node must not appear with an all-free head: %v", a)
		}
	}
}
