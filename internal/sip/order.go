package sip

import "repro/internal/ast"

// coverScore returns the number of arguments of the literal fully covered by
// the available variables, with ground arguments counting as covered. It is
// the scoring function of the greedy bound-first heuristic, shared between
// the sip strategy (GreedyBoundFirst) and the join-pipeline compiler of
// internal/eval.
func coverScore(lit ast.Atom, available map[string]bool) int {
	n := 0
	for _, arg := range lit.Args {
		vars := ast.Vars(arg, nil)
		if len(vars) == 0 {
			if ast.IsGround(arg) {
				n++
			}
			continue
		}
		all := true
		for _, v := range vars {
			if !available[v] {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// greedyPick returns the unused body position with the highest cover score,
// preferring base literals among equals and, among those, the textual order.
// It returns -1 when every position is used.
func greedyPick(body []ast.Atom, used []bool, available map[string]bool, derived map[string]bool) int {
	best := -1
	bestScore := -1
	bestIsBase := false
	for i, lit := range body {
		if used[i] {
			continue
		}
		s := coverScore(lit, available)
		isBase := !derived[lit.PredKey()]
		better := false
		switch {
		case s > bestScore:
			better = true
		case s == bestScore && isBase && !bestIsBase:
			// Prefer base literals: they are directly evaluable and feed
			// bindings to the derived ones.
			better = true
		}
		if better {
			best, bestScore, bestIsBase = i, s, isBase
		}
	}
	return best
}

// GreedyOrder returns an evaluation order over the body positions chosen by
// the greedy bound-variables-first heuristic: starting from the variables in
// bound, repeatedly pick the literal with the most arguments fully covered
// by the variables available so far (ground arguments count as covered),
// preferring base literals and, among equals, the textual order. If first is
// a valid body position, that literal is forced to the front of the order —
// the semi-naive evaluator uses this to drive a join from the delta
// occurrence. The bound map is not modified.
func GreedyOrder(body []ast.Atom, bound map[string]bool, derived map[string]bool, first int) []int {
	available := make(map[string]bool, len(bound))
	for v := range bound {
		available[v] = true
	}
	order := make([]int, 0, len(body))
	used := make([]bool, len(body))
	take := func(i int) {
		used[i] = true
		order = append(order, i)
		for _, v := range ast.AtomVars(body[i], nil) {
			available[v] = true
		}
	}
	if first >= 0 && first < len(body) {
		take(first)
	}
	for len(order) < len(body) {
		take(greedyPick(body, used, available, derived))
	}
	return order
}
