// Package sip implements sideways information passing strategies
// (Section 2 of Beeri & Ramakrishnan, "On the Power of Magic").
//
// A sip for a rule is a labelled graph. Its nodes are the body predicate
// occurrences of the rule plus a special node p_h standing for the head
// predicate restricted to its bound arguments. An arc N →χ q says: evaluate
// (the join of) the predicates in N, project onto the variables χ, and pass
// the resulting bindings to the body occurrence q, restricting its
// computation. The conditions on a valid sip are:
//
//	(1) nodes are members or subsets of P(r) ∪ {p_h};
//	(2) for every arc N →χ q: (i) every variable of χ appears in N,
//	    (ii) every member of N is connected to a variable of χ,
//	    (iii) some argument of q has all of its variables in χ, and every
//	    variable of χ appears in such an argument;
//	(3) the precedence relation induced by the arcs is acyclic.
//
// The package also provides the two standard sip builders used throughout
// the paper's examples: the full left-to-right (compressed) sip, which
// passes all available bindings, and the partial left-to-right sip, which
// passes only bindings produced since the previous derived literal
// (Example 1, sips (I)/(IV) versus (II)/(V)).
package sip

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// HeadNode is the node identifier of the special predicate p_h denoting the
// bound arguments of the rule head. Body occurrences are identified by their
// position (0-based) in the rule body.
const HeadNode = -1

// Arc is a labelled sip arc N →χ q.
type Arc struct {
	// Tail holds the node identifiers of N: HeadNode and/or body positions.
	Tail []int
	// Head is the body position of the predicate occurrence receiving the
	// bindings.
	Head int
	// Label is the set χ of variable names passed along the arc.
	Label map[string]bool
}

// LabelVars returns the label variables in sorted order.
func (a Arc) LabelVars() []string { return ast.SortedVarNames(a.Label) }

// HasTailMember reports whether the given node is in the arc's tail.
func (a Arc) HasTailMember(node int) bool {
	for _, n := range a.Tail {
		if n == node {
			return true
		}
	}
	return false
}

// Graph is a sip for one rule under one head binding pattern.
type Graph struct {
	// Rule is the rule the sip belongs to.
	Rule ast.Rule
	// HeadAdornment is the binding pattern of the head predicate the sip is
	// designed for (the adornment a in the paper's "sip s_r^a").
	HeadAdornment ast.Adornment
	// Arcs are the sip arcs. At most one arc per body occurrence is produced
	// by the builders in this package; Validate accepts multiple arcs per
	// occurrence (the rewriters join them via label rules).
	Arcs []Arc
}

// BoundHeadVars returns the set of variables appearing in bound arguments of
// the rule head according to the head adornment. This is the variable set of
// the special node p_h.
func (g *Graph) BoundHeadVars() map[string]bool {
	set := make(map[string]bool)
	for i, arg := range g.Rule.Head.Args {
		if g.HeadAdornment.Bound(i) {
			for _, v := range ast.Vars(arg, nil) {
				set[v] = true
			}
		}
	}
	return set
}

// nodeVars returns the variable set of a node: the bound head variables for
// HeadNode, or the variables of the body occurrence.
func (g *Graph) nodeVars(node int) map[string]bool {
	if node == HeadNode {
		return g.BoundHeadVars()
	}
	return ast.AtomVarSet(g.Rule.Body[node])
}

// nodeName renders a node for error messages and display.
func (g *Graph) nodeName(node int) string {
	if node == HeadNode {
		return g.Rule.Head.Pred + "_h"
	}
	return fmt.Sprintf("%s.%d", g.Rule.Body[node].Pred, node)
}

// ArcsInto returns the arcs whose head is the given body position.
func (g *Graph) ArcsInto(pos int) []Arc {
	var out []Arc
	for _, a := range g.Arcs {
		if a.Head == pos {
			out = append(out, a)
		}
	}
	return out
}

// PassedVars returns χ_i, the union of the labels of all arcs entering the
// body occurrence at the given position (empty if no arc enters it). The
// adornment construction of Section 3 binds an argument of the occurrence
// iff all of the argument's variables are in this set.
func (g *Graph) PassedVars(pos int) map[string]bool {
	set := make(map[string]bool)
	for _, a := range g.ArcsInto(pos) {
		for v := range a.Label {
			set[v] = true
		}
	}
	return set
}

// Validate checks conditions (1)-(3) of the definition of a sip.
func (g *Graph) Validate() error {
	n := len(g.Rule.Body)
	if !g.HeadAdornment.Valid() || len(g.HeadAdornment) != len(g.Rule.Head.Args) {
		return fmt.Errorf("sip: head adornment %q does not match head %s", g.HeadAdornment, g.Rule.Head)
	}
	for _, a := range g.Arcs {
		if a.Head < 0 || a.Head >= n {
			return fmt.Errorf("sip: arc head %d is not a body position of %s", a.Head, g.Rule)
		}
		if len(a.Label) == 0 {
			return fmt.Errorf("sip: arc into %s has an empty label", g.nodeName(a.Head))
		}
		if len(a.Tail) == 0 {
			return fmt.Errorf("sip: arc into %s has an empty tail", g.nodeName(a.Head))
		}
		seen := make(map[int]bool)
		tailVars := make(map[string]bool)
		for _, node := range a.Tail {
			if node != HeadNode && (node < 0 || node >= n) {
				return fmt.Errorf("sip: arc tail member %d is not a node of %s", node, g.Rule)
			}
			if node == a.Head {
				return fmt.Errorf("sip: arc into %s contains its own head in the tail", g.nodeName(a.Head))
			}
			if seen[node] {
				return fmt.Errorf("sip: arc into %s lists tail member %s twice", g.nodeName(a.Head), g.nodeName(node))
			}
			seen[node] = true
			for v := range g.nodeVars(node) {
				tailVars[v] = true
			}
		}
		// (2)(i): every label variable appears in the tail.
		for v := range a.Label {
			if !tailVars[v] {
				return fmt.Errorf("sip: label variable %s of arc into %s does not appear in the tail", v, g.nodeName(a.Head))
			}
		}
		// (2)(ii): every tail member is connected to a label variable.
		for _, node := range a.Tail {
			if !g.connectedToLabel(node, a.Label) {
				return fmt.Errorf("sip: tail member %s of arc into %s is not connected to any label variable", g.nodeName(node), g.nodeName(a.Head))
			}
		}
		// (2)(iii): some argument of q is fully covered, and every label
		// variable appears in a fully covered argument.
		target := g.Rule.Body[a.Head]
		coveredVars := make(map[string]bool)
		anyCovered := false
		for _, arg := range target.Args {
			vars := ast.Vars(arg, nil)
			if len(vars) == 0 {
				continue
			}
			all := true
			for _, v := range vars {
				if !a.Label[v] {
					all = false
					break
				}
			}
			if all {
				anyCovered = true
				for _, v := range vars {
					coveredVars[v] = true
				}
			}
		}
		if !anyCovered {
			return fmt.Errorf("sip: arc into %s covers no argument of the target completely", g.nodeName(a.Head))
		}
		for v := range a.Label {
			if !coveredVars[v] {
				return fmt.Errorf("sip: label variable %s of arc into %s does not appear in any fully covered argument", v, g.nodeName(a.Head))
			}
		}
	}
	// (3): the precedence relation is acyclic.
	if _, err := g.TotalOrder(); err != nil {
		return err
	}
	return nil
}

// connectedToLabel reports whether the node shares a variable, directly or
// through a chain of body literals, with some variable of the label set.
// Connection is variable connectivity within the rule (Section 1.1).
func (g *Graph) connectedToLabel(node int, label map[string]bool) bool {
	start := g.nodeVars(node)
	if len(start) == 0 {
		return false
	}
	// BFS over variables: two variables are connected if they co-occur in
	// some body literal or in the bound head arguments.
	adjacency := func(v string) map[string]bool {
		out := make(map[string]bool)
		for _, b := range g.Rule.Body {
			set := ast.AtomVarSet(b)
			if set[v] {
				for w := range set {
					out[w] = true
				}
			}
		}
		hv := g.BoundHeadVars()
		if hv[v] {
			for w := range hv {
				out[w] = true
			}
		}
		return out
	}
	visited := make(map[string]bool)
	queue := make([]string, 0, len(start))
	for v := range start {
		visited[v] = true
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if label[v] {
			return true
		}
		for w := range adjacency(v) {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// TotalOrder returns a total ordering of the body positions consistent with
// the sip precedence relation (condition (3')): for each arc, every tail
// member precedes the arc's head, and positions that do not appear in the
// sip follow all positions that do. Ties are broken by textual position, so
// for the left-to-right builders the order is the identity. An error is
// returned if the precedence relation is cyclic.
func (g *Graph) TotalOrder() ([]int, error) {
	n := len(g.Rule.Body)
	appears := make([]bool, n)
	succ := make(map[int]map[int]bool)
	indeg := make([]int, n)
	for _, a := range g.Arcs {
		appears[a.Head] = true
		for _, t := range a.Tail {
			if t == HeadNode {
				continue
			}
			appears[t] = true
			if succ[t] == nil {
				succ[t] = make(map[int]bool)
			}
			if !succ[t][a.Head] {
				succ[t][a.Head] = true
				indeg[a.Head]++
			}
		}
	}
	var order []int
	inOrder := make([]bool, n)
	remaining := 0
	for i := 0; i < n; i++ {
		if appears[i] {
			remaining++
		}
	}
	for remaining > 0 {
		picked := -1
		for i := 0; i < n; i++ {
			if appears[i] && !inOrder[i] && indeg[i] == 0 {
				picked = i
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("sip: precedence relation of %s is cyclic (condition 3 violated)", g.Rule.Head)
		}
		inOrder[picked] = true
		order = append(order, picked)
		remaining--
		for s := range succ[picked] {
			indeg[s]--
		}
	}
	for i := 0; i < n; i++ {
		if !appears[i] {
			order = append(order, i)
		}
	}
	return order, nil
}

// LastWithArc returns the position (in the sip total order) of the last body
// occurrence that has an incoming arc, and the total order itself. It
// returns -1 when no occurrence has an incoming arc. The supplementary
// rewritings use this to decide how many supplementary predicates to create.
func (g *Graph) LastWithArc() (lastOrderIndex int, order []int, err error) {
	order, err = g.TotalOrder()
	if err != nil {
		return 0, nil, err
	}
	lastOrderIndex = -1
	for idx, pos := range order {
		if len(g.ArcsInto(pos)) > 0 {
			lastOrderIndex = idx
		}
	}
	return lastOrderIndex, order, nil
}

// String renders the sip in the paper's notation, one arc per line, e.g.
// "{sg_h, up} ->{Z1} sg.1".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sip for %s (head adornment %s)\n", g.Rule.Head, g.HeadAdornment)
	for _, a := range g.Arcs {
		names := make([]string, len(a.Tail))
		for i, t := range a.Tail {
			names[i] = g.nodeName(t)
		}
		fmt.Fprintf(&b, "  {%s} ->{%s} %s\n",
			strings.Join(names, ", "),
			strings.Join(a.LabelVars(), ", "),
			g.nodeName(a.Head))
	}
	return b.String()
}

// Strategy chooses a sip for a rule given the binding pattern of its head.
// The adornment construction calls the strategy once per (rule, adorned head
// predicate) pair, matching the paper's "choose for the rule a sip s_r^a".
type Strategy interface {
	// SipFor returns the sip to use for the rule under the given head
	// adornment. Implementations must return a valid sip.
	SipFor(rule ast.Rule, headAdornment ast.Adornment, derived map[string]bool) (*Graph, error)
	// Name identifies the strategy in statistics and CLI output.
	Name() string
}

// leftToRight is the full and partial left-to-right sip builders.
type leftToRight struct {
	full bool
}

// FullLeftToRight returns the strategy that builds, for every rule, the full
// (compressed) left-to-right sip: body literals are taken in textual order
// and every binding obtained so far is passed to each later derived literal.
// This is sip (I)/(IV) of Example 1.
func FullLeftToRight() Strategy { return leftToRight{full: true} }

// PartialLeftToRight returns the strategy that builds the partial
// left-to-right sip: each derived literal receives only the bindings
// produced since the previous derived literal (or since the head for the
// first one). This is sip (II)/(V) of Example 1.
func PartialLeftToRight() Strategy { return leftToRight{full: false} }

// Name implements Strategy.
func (s leftToRight) Name() string {
	if s.full {
		return "full-left-to-right"
	}
	return "partial-left-to-right"
}

// SipFor implements Strategy.
func (s leftToRight) SipFor(rule ast.Rule, headAdornment ast.Adornment, derived map[string]bool) (*Graph, error) {
	if len(headAdornment) != len(rule.Head.Args) {
		return nil, fmt.Errorf("sip: adornment %q has length %d, head %s has arity %d",
			headAdornment, len(headAdornment), rule.Head, len(rule.Head.Args))
	}
	g := &Graph{Rule: rule, HeadAdornment: headAdornment}

	boundHead := g.BoundHeadVars()
	headHasBound := headAdornment.BoundCount() > 0

	// available tracks every variable bound so far (full variant); sinceLast
	// tracks variables bound since the previous derived literal (partial
	// variant). lastTail is the node set to use as the arc tail in the
	// partial variant.
	available := make(map[string]bool)
	for v := range boundHead {
		available[v] = true
	}
	fullTail := []int{}
	if headHasBound {
		fullTail = append(fullTail, HeadNode)
	}
	partialTail := append([]int(nil), fullTail...)
	sinceLast := make(map[string]bool)
	for v := range boundHead {
		sinceLast[v] = true
	}

	for i, lit := range rule.Body {
		isDerived := derived[lit.PredKey()]
		if isDerived {
			var tail []int
			var avail map[string]bool
			if s.full {
				tail = append([]int(nil), fullTail...)
				avail = available
			} else {
				tail = append([]int(nil), partialTail...)
				avail = sinceLast
			}
			label := coveringLabel(lit, avail)
			if len(label) > 0 && len(tail) > 0 {
				// Condition (2)(ii): drop tail members not connected to a
				// label variable. With connected rules this rarely removes
				// anything, but guard against head nodes with no shared
				// variables.
				tail = g.pruneTail(tail, label)
				if len(tail) > 0 {
					g.Arcs = append(g.Arcs, Arc{Tail: tail, Head: i, Label: label})
				}
			}
			// After a derived literal, the partial variant starts a new
			// window whose only source is this literal.
			partialTail = []int{i}
			sinceLast = make(map[string]bool)
		} else if !s.full {
			partialTail = append(partialTail, i)
		}
		// All variables of the literal become available once it is solved.
		for _, v := range ast.AtomVars(lit, nil) {
			available[v] = true
			sinceLast[v] = true
		}
		fullTail = append(fullTail, i)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// pruneTail removes tail members that are not connected to any label
// variable (condition (2)(ii)).
func (g *Graph) pruneTail(tail []int, label map[string]bool) []int {
	var out []int
	for _, node := range tail {
		if g.connectedToLabel(node, label) {
			out = append(out, node)
		}
	}
	return out
}

// coveringLabel computes the maximal label allowed by condition (2)(iii):
// the union of the variables of every argument of the target all of whose
// variables are available.
func coveringLabel(target ast.Atom, available map[string]bool) map[string]bool {
	label := make(map[string]bool)
	for _, arg := range target.Args {
		vars := ast.Vars(arg, nil)
		if len(vars) == 0 {
			continue
		}
		all := true
		for _, v := range vars {
			if !available[v] {
				all = false
				break
			}
		}
		if all {
			for _, v := range vars {
				label[v] = true
			}
		}
	}
	return label
}

// Contains reports whether sip g is contained in sip h (Section 2.1): for
// every arc N →χ q of g there is an arc N' →χ' q of h with N ⊆ N' and
// χ ⊆ χ'.
func Contains(g, h *Graph) bool {
	for _, a := range g.Arcs {
		found := false
		for _, b := range h.Arcs {
			if b.Head != a.Head {
				continue
			}
			if subsetNodes(a.Tail, b.Tail) && subsetVars(a.Label, b.Label) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ProperlyContains reports whether g is properly contained in h: g is
// contained in h and h has an arc, tail member or label variable g lacks.
// A sip that is properly contained in another sip is partial (Section 2.1).
func ProperlyContains(g, h *Graph) bool {
	if !Contains(g, h) {
		return false
	}
	if len(h.Arcs) > len(g.Arcs) {
		return true
	}
	for _, b := range h.Arcs {
		matched := false
		for _, a := range g.Arcs {
			if a.Head != b.Head {
				continue
			}
			if subsetNodes(b.Tail, a.Tail) && subsetVars(b.Label, a.Label) {
				matched = true
				break
			}
		}
		if !matched {
			return true
		}
	}
	return false
}

func subsetNodes(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func subsetVars(a, b map[string]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Fixed is a Strategy that returns pre-built sips, keyed by rule index and
// head adornment. It is used to attach hand-written sips (such as the ones
// in the paper's examples) to a program. Rules without an entry fall back to
// the default strategy.
type Fixed struct {
	// Default is used when no explicit sip is registered for a rule.
	Default Strategy
	// ByRule maps "ruleIndex|adornment" to the sip to use.
	byRule map[string]*Graph
	// resolver maps a rule to its index; populated via Register.
	keys map[string]int
}

// NewFixed returns a Fixed strategy with the given fallback.
func NewFixed(fallback Strategy) *Fixed {
	return &Fixed{Default: fallback, byRule: make(map[string]*Graph), keys: make(map[string]int)}
}

// Register attaches a sip to a rule (identified structurally by its String)
// for the sip's head adornment.
func (f *Fixed) Register(g *Graph) {
	key := g.Rule.String() + "|" + string(g.HeadAdornment)
	f.byRule[key] = g
}

// Name implements Strategy.
func (f *Fixed) Name() string { return "fixed(" + f.Default.Name() + ")" }

// SipFor implements Strategy.
func (f *Fixed) SipFor(rule ast.Rule, headAdornment ast.Adornment, derived map[string]bool) (*Graph, error) {
	key := rule.String() + "|" + string(headAdornment)
	if g, ok := f.byRule[key]; ok {
		return g, nil
	}
	return f.Default.SipFor(rule, headAdornment, derived)
}

// SortedNodes returns a copy of the node slice in ascending order with
// HeadNode first; used for deterministic rendering.
func SortedNodes(nodes []int) []int {
	out := append([]int(nil), nodes...)
	sort.Ints(out)
	return out
}
