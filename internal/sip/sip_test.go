package sip

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// sameGenRule is the second rule of the nonlinear same-generation program of
// Example 1: sg(X,Y) :- up(X,Z1), sg(Z1,Z2), flat(Z2,Z3), sg(Z3,Z4), down(Z4,Y).
func sameGenRule(t *testing.T) (ast.Rule, map[string]bool) {
	t.Helper()
	prog := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).
	`)
	return prog.Rules[1], prog.DerivedPredicates()
}

// ancestorRule is the recursive ancestor rule anc(X,Y) :- par(X,Z), anc(Z,Y).
func ancestorRule(t *testing.T) (ast.Rule, map[string]bool) {
	t.Helper()
	prog := parser.MustParseProgram(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
	`)
	return prog.Rules[1], prog.DerivedPredicates()
}

func TestFullLeftToRightSameGeneration(t *testing.T) {
	rule, derived := sameGenRule(t)
	g, err := FullLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	// Example 1 sip (I)/(IV): arcs enter sg.1 (position 1) and sg.2
	// (position 3) only, labelled Z1 and Z3 respectively.
	if len(g.Arcs) != 2 {
		t.Fatalf("expected 2 arcs, got %d:\n%s", len(g.Arcs), g)
	}
	a1, a2 := g.Arcs[0], g.Arcs[1]
	if a1.Head != 1 || len(a1.Label) != 1 || !a1.Label["Z1"] {
		t.Errorf("first arc = %v (label %v)", a1, a1.LabelVars())
	}
	if a2.Head != 3 || len(a2.Label) != 1 || !a2.Label["Z3"] {
		t.Errorf("second arc = %v (label %v)", a2, a2.LabelVars())
	}
	// Full sip: the tail of the second arc carries everything computed so
	// far — head, up, sg.1 and flat.
	if len(a2.Tail) != 4 || !a2.HasTailMember(HeadNode) || !a2.HasTailMember(0) || !a2.HasTailMember(1) || !a2.HasTailMember(2) {
		t.Errorf("second arc tail = %v, want {head, 0, 1, 2}", a2.Tail)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("generated sip should validate: %v", err)
	}
}

func TestPartialLeftToRightSameGeneration(t *testing.T) {
	rule, derived := sameGenRule(t)
	g, err := PartialLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Arcs) != 2 {
		t.Fatalf("expected 2 arcs, got %d:\n%s", len(g.Arcs), g)
	}
	// Sip (V): {sg_h; up} -> Z1 sg.1 and {sg.1; flat} -> Z3 sg.2.
	a1, a2 := g.Arcs[0], g.Arcs[1]
	if !a1.HasTailMember(HeadNode) || !a1.HasTailMember(0) || len(a1.Tail) != 2 {
		t.Errorf("first arc tail = %v, want {head, up}", a1.Tail)
	}
	if !a2.HasTailMember(1) || !a2.HasTailMember(2) || len(a2.Tail) != 2 {
		t.Errorf("second arc tail = %v, want {sg.1, flat}", a2.Tail)
	}
	if a2.HasTailMember(HeadNode) || a2.HasTailMember(0) {
		t.Errorf("partial sip must not carry head/up into the second arc: %v", a2.Tail)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("generated sip should validate: %v", err)
	}
}

func TestPartialContainedInFull(t *testing.T) {
	rule, derived := sameGenRule(t)
	full, _ := FullLeftToRight().SipFor(rule, "bf", derived)
	partial, _ := PartialLeftToRight().SipFor(rule, "bf", derived)
	if !Contains(partial, full) {
		t.Error("the partial left-to-right sip must be contained in the full one")
	}
	if !ProperlyContains(partial, full) {
		t.Error("the containment must be proper (the partial sip is a partial sip)")
	}
	if ProperlyContains(full, full) {
		t.Error("a sip does not properly contain itself")
	}
	if !Contains(full, full) {
		t.Error("containment must be reflexive")
	}
	if Contains(full, partial) {
		t.Error("the full sip is not contained in the partial sip")
	}
}

func TestAncestorSip(t *testing.T) {
	rule, derived := ancestorRule(t)
	g, err := FullLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	// One arc: {anc_h, par} -> Z anc.1.
	if len(g.Arcs) != 1 {
		t.Fatalf("arcs = %v", g.Arcs)
	}
	a := g.Arcs[0]
	if a.Head != 1 || !a.Label["Z"] || len(a.Label) != 1 {
		t.Errorf("arc = %+v", a)
	}
	order, err := g.TotalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("total order = %v", order)
	}
	last, _, err := g.LastWithArc()
	if err != nil || last != 1 {
		t.Errorf("LastWithArc = %d, %v", last, err)
	}
}

func TestFreeQueryProducesNoArcs(t *testing.T) {
	rule, derived := ancestorRule(t)
	g, err := FullLeftToRight().SipFor(rule, "ff", derived)
	if err != nil {
		t.Fatal(err)
	}
	// With no bound head arguments, par binds Z and X, so an arc into anc.1
	// labelled Z (and possibly X, Y is not available) is still legal — but
	// the head node must not appear in any tail.
	for _, a := range g.Arcs {
		if a.HasTailMember(HeadNode) {
			t.Errorf("head node must not appear when no head argument is bound: %v", a)
		}
	}
}

func TestBoundHeadVarsAndPassedVars(t *testing.T) {
	rule, derived := sameGenRule(t)
	g, _ := FullLeftToRight().SipFor(rule, "bf", derived)
	hv := g.BoundHeadVars()
	if !hv["X"] || len(hv) != 1 {
		t.Errorf("BoundHeadVars = %v", hv)
	}
	pv := g.PassedVars(1)
	if !pv["Z1"] || len(pv) != 1 {
		t.Errorf("PassedVars(1) = %v", pv)
	}
	if len(g.PassedVars(0)) != 0 || len(g.PassedVars(4)) != 0 {
		t.Error("base literals must have no incoming bindings in this sip")
	}
}

func TestValidateRejectsBadSips(t *testing.T) {
	rule, _ := ancestorRule(t)

	// Label variable not in tail.
	bad1 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{
		Tail: []int{HeadNode}, Head: 1, Label: map[string]bool{"Q": true},
	}}}
	if err := bad1.Validate(); err == nil {
		t.Error("label variable outside the tail must be rejected")
	}

	// Label that does not cover any argument of the target.
	bad2 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{
		Tail: []int{HeadNode}, Head: 0, Label: map[string]bool{"X": true},
	}}}
	// par(X, Z): argument X is covered, so this one is actually fine; use a
	// label that covers nothing by targeting anc.1 with only X bound — X does
	// not appear in anc(Z, Y).
	bad2.Arcs[0].Head = 1
	if err := bad2.Validate(); err == nil {
		t.Error("label covering no argument of the target must be rejected")
	}

	// Cyclic precedence: two arcs where each target is in the other's tail.
	ruleSG, derived := sameGenRule(t)
	full, _ := FullLeftToRight().SipFor(ruleSG, "bf", derived)
	_ = derived
	// sg.1(Z1, Z2) and flat(Z2, Z3) each claim to bind Z2 for the other:
	// every per-arc condition holds, but the precedence relation is cyclic.
	cyclic := &Graph{Rule: ruleSG, HeadAdornment: "bf", Arcs: []Arc{
		{Tail: []int{2}, Head: 1, Label: map[string]bool{"Z2": true}},
		{Tail: []int{1}, Head: 2, Label: map[string]bool{"Z2": true}},
	}}
	if err := cyclic.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic sip must be rejected, got %v", err)
	}
	_ = full

	// Empty label and empty tail.
	bad3 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{Tail: nil, Head: 1, Label: map[string]bool{"Z": true}}}}
	if err := bad3.Validate(); err == nil {
		t.Error("empty tail must be rejected")
	}
	bad4 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{Tail: []int{0}, Head: 1, Label: map[string]bool{}}}}
	if err := bad4.Validate(); err == nil {
		t.Error("empty label must be rejected")
	}

	// Arc head out of range, tail member out of range, self-loop, duplicate.
	bad5 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{Tail: []int{0}, Head: 9, Label: map[string]bool{"Z": true}}}}
	if err := bad5.Validate(); err == nil {
		t.Error("arc head out of range must be rejected")
	}
	bad6 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{Tail: []int{7}, Head: 1, Label: map[string]bool{"Z": true}}}}
	if err := bad6.Validate(); err == nil {
		t.Error("tail member out of range must be rejected")
	}
	bad7 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{Tail: []int{1}, Head: 1, Label: map[string]bool{"Z": true}}}}
	if err := bad7.Validate(); err == nil {
		t.Error("self-loop must be rejected")
	}
	bad8 := &Graph{Rule: rule, HeadAdornment: "bf", Arcs: []Arc{{Tail: []int{0, 0}, Head: 1, Label: map[string]bool{"Z": true}}}}
	if err := bad8.Validate(); err == nil {
		t.Error("duplicate tail member must be rejected")
	}

	// Mismatched adornment length.
	bad9 := &Graph{Rule: rule, HeadAdornment: "b"}
	if err := bad9.Validate(); err == nil {
		t.Error("adornment length mismatch must be rejected")
	}
}

func TestStrategyAdornmentMismatch(t *testing.T) {
	rule, derived := ancestorRule(t)
	if _, err := FullLeftToRight().SipFor(rule, "b", derived); err == nil {
		t.Error("adornment of wrong length must be rejected")
	}
}

func TestFixedStrategy(t *testing.T) {
	rule, derived := sameGenRule(t)
	partial, _ := PartialLeftToRight().SipFor(rule, "bf", derived)
	fixed := NewFixed(FullLeftToRight())
	fixed.Register(partial)

	got, err := fixed.SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	if !ProperlyContains(got, mustFull(t, rule, derived)) {
		t.Error("fixed strategy should have returned the registered partial sip")
	}
	// Unregistered rule falls back to the default.
	other, derived2 := ancestorRule(t)
	g, err := fixed.SipFor(other, "bf", derived2)
	if err != nil || len(g.Arcs) != 1 {
		t.Errorf("fallback failed: %v %v", g, err)
	}
	if fixed.Name() != "fixed(full-left-to-right)" {
		t.Errorf("Name = %s", fixed.Name())
	}
}

func mustFull(t *testing.T, rule ast.Rule, derived map[string]bool) *Graph {
	t.Helper()
	g, err := FullLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStringRendering(t *testing.T) {
	rule, derived := sameGenRule(t)
	g, _ := FullLeftToRight().SipFor(rule, "bf", derived)
	out := g.String()
	for _, want := range []string{"sg_h", "up.0", "sg.1", "sg.3", "Z1", "Z3"} {
		if !strings.Contains(out, want) {
			t.Errorf("sip rendering missing %q:\n%s", want, out)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	if FullLeftToRight().Name() != "full-left-to-right" {
		t.Error("full name wrong")
	}
	if PartialLeftToRight().Name() != "partial-left-to-right" {
		t.Error("partial name wrong")
	}
}

func TestListReverseSip(t *testing.T) {
	// reverse(V|X, Y) :- reverse(X, Z), append(V, Z, Y) with head adornment
	// bf: the head binds V and X; the arc into reverse.0 is labelled X, and
	// the arc into append.1 is labelled {V, Z} (V from the head, Z from
	// reverse).
	prog := parser.MustParseProgram(`
		append(V, [W | X], [W | Y]) :- append(V, X, Y).
		reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
	`)
	rule := prog.Rules[1]
	derived := prog.DerivedPredicates()
	g, err := FullLeftToRight().SipFor(rule, "bf", derived)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Arcs) != 2 {
		t.Fatalf("expected 2 arcs, got:\n%s", g)
	}
	if !g.Arcs[0].Label["X"] || len(g.Arcs[0].Label) != 1 {
		t.Errorf("arc into reverse.0 labelled %v, want {X}", g.Arcs[0].LabelVars())
	}
	if !g.Arcs[1].Label["V"] || !g.Arcs[1].Label["Z"] || len(g.Arcs[1].Label) != 2 {
		t.Errorf("arc into append.1 labelled %v, want {V, Z}", g.Arcs[1].LabelVars())
	}
}

func TestSortedNodes(t *testing.T) {
	got := SortedNodes([]int{3, HeadNode, 1})
	if len(got) != 3 || got[0] != HeadNode || got[1] != 1 || got[2] != 3 {
		t.Errorf("SortedNodes = %v", got)
	}
}
