package topdown

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/adorn"
	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/intern"
	"repro/internal/parser"
	"repro/internal/sip"
)

const (
	ancestorSrc = `
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
	`
	nonlinearSameGenSrc = `
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).
	`
	listReverseSrc = `
		append(V, [], [V]) :- elem(V).
		append(V, [W | X], [W | Y]) :- append(V, X, Y).
		reverse([], []) :- emptylist(X).
		reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).
	`
)

func adorned(t *testing.T, src, query string) *adorn.Program {
	t.Helper()
	ad, err := adorn.Adorn(parser.MustParseProgram(src), parser.MustParseQuery(query), sip.FullLeftToRight())
	if err != nil {
		t.Fatal(err)
	}
	return ad
}

func parentChain(n int) *database.Store {
	s := database.NewStore()
	for i := 0; i < n; i++ {
		s.MustAddFact(ast.NewAtom("par", ast.S(fmt.Sprintf("n%d", i)), ast.S(fmt.Sprintf("n%d", i+1))))
	}
	return s
}

func TestAncestorChain(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(n3, Y)")
	res, err := Evaluate(ad, parentChain(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 7 {
		t.Errorf("answers = %v, want 7 descendants of n3", res.Answers)
	}
	// Goals: one per node reachable from n3 (n3..n10 generate subqueries,
	// the one for n10 has no par edge but is still asked).
	if res.Stats.Queries != 8 {
		t.Errorf("queries = %d, want 8", res.Stats.Queries)
	}
	if res.Stats.Answers == 0 || res.Stats.Derivations == 0 || res.Stats.Passes == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.QueriesByPredicate["anc^bf"] != 8 {
		t.Errorf("queries by predicate = %v", res.Stats.QueriesByPredicate)
	}
}

func TestAgreesWithBottomUpOnCyclicData(t *testing.T) {
	// A cycle: the memo tables must converge and agree with semi-naive
	// evaluation of the unrewritten program.
	edb := database.NewStore()
	for i := 0; i < 5; i++ {
		edb.MustAddFact(ast.NewAtom("par", ast.S(fmt.Sprintf("c%d", i)), ast.S(fmt.Sprintf("c%d", (i+1)%5))))
	}
	ad := adorned(t, ancestorSrc, "anc(c2, Y)")
	res, err := Evaluate(ad, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := eval.SemiNaive(eval.Options{}).Evaluate(parser.MustParseProgram(ancestorSrc), edb)
	if err != nil {
		t.Fatal(err)
	}
	want := eval.AnswerSet(full, "anc", ast.NewAtom("anc", ast.S("c2"), ast.V("Y")))
	got := res.AnswerSet()
	if len(got) != len(want) {
		t.Fatalf("answers %d, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing answer %s", k)
		}
	}
}

func TestSameGenerationGoalsAndFacts(t *testing.T) {
	edb := database.NewStore()
	for i := 1; i <= 4; i++ {
		edb.MustAddFact(ast.NewAtom("up", ast.S(fmt.Sprintf("a%d", i)), ast.S(fmt.Sprintf("p%d", i))))
		edb.MustAddFact(ast.NewAtom("down", ast.S(fmt.Sprintf("p%d", i)), ast.S(fmt.Sprintf("a%d", i))))
		if i < 4 {
			edb.MustAddFact(ast.NewAtom("flat", ast.S(fmt.Sprintf("p%d", i)), ast.S(fmt.Sprintf("p%d", i+1))))
			edb.MustAddFact(ast.NewAtom("flat", ast.S(fmt.Sprintf("a%d", i)), ast.S(fmt.Sprintf("a%d", i+1))))
		}
	}
	ad := adorned(t, nonlinearSameGenSrc, "sg(a1, Y)")
	res, err := Evaluate(ad, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := eval.SemiNaive(eval.Options{}).Evaluate(parser.MustParseProgram(nonlinearSameGenSrc), edb)
	if err != nil {
		t.Fatal(err)
	}
	want := eval.AnswerSet(full, "sg", ast.NewAtom("sg", ast.S("a1"), ast.V("Y")))
	got := res.AnswerSet()
	if len(got) != len(want) {
		t.Fatalf("answers %d, want %d", len(got), len(want))
	}
	// The top-down strategy must not compute the whole sg relation.
	if res.Facts.FactCount("sg^bf") >= full.FactCount("sg") {
		t.Errorf("top-down computed %d sg facts, naive computed %d; expected a restriction",
			res.Facts.FactCount("sg^bf"), full.FactCount("sg"))
	}
	// Every goal's predicate is the adorned sg predicate.
	for _, g := range res.Goals {
		if g.Pred != "sg^bf" {
			t.Errorf("unexpected goal %s", g)
		}
	}
}

func TestListReverseTopDown(t *testing.T) {
	edb := database.NewStore()
	for _, e := range []string{"a", "b", "c"} {
		edb.MustAddFact(ast.NewAtom("elem", ast.S(e)))
	}
	edb.MustAddFact(ast.NewAtom("emptylist", ast.S("nil")))
	ad := adorned(t, listReverseSrc, "reverse([a, b, c], Y)")
	res, err := Evaluate(ad, edb, Options{MaxPasses: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0][0].String() != "[c, b, a]" {
		t.Errorf("answers = %v, want [[c, b, a]]", res.Answers)
	}
	// Goals: reverse on each suffix (4) plus append on each recursive step.
	if res.Stats.QueriesByPredicate["reverse^bf"] != 4 {
		t.Errorf("reverse goals = %d, want 4", res.Stats.QueriesByPredicate["reverse^bf"])
	}
	if res.Stats.QueriesByPredicate["append^bbf"] == 0 {
		t.Error("expected append^bbf goals")
	}
}

func TestGoalKeyAndString(t *testing.T) {
	g := Goal{Pred: "anc^bf", Bound: []ast.Term{ast.S("john")}}
	if g.String() != "anc^bf(john)" {
		t.Errorf("String = %s", g.String())
	}
	keys := intern.NewTable()
	other := Goal{Pred: "anc^bf", Bound: []ast.Term{ast.S("johnny")}}
	if g.Key(keys) == other.Key(keys) {
		t.Error("distinct goals must have distinct keys")
	}
}

// TestGoalKeysScopedToEvaluation checks that memoizing a query's constants
// interns into the evaluation's own symbol table: the process-wide table
// must not grow, so a long-lived server running the top-down strategy does
// not leak one table entry per distinct constant ever queried.
func TestGoalKeysScopedToEvaluation(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(n0, Y)")
	before := intern.Global().Len()
	res, err := Evaluate(ad, parentChain(30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("expected answers")
	}
	if after := intern.Global().Len(); after != before {
		t.Errorf("process-wide intern table grew from %d to %d entries during a top-down evaluation", before, after)
	}
	// The result can still probe its own goal set.
	g := Goal{Pred: ad.QueryPred, Bound: ad.Query.BoundConstants()}
	if _, ok := res.Goals[res.GoalKey(g)]; !ok {
		t.Error("query goal not found under its own evaluation key")
	}
}

// TestMaxDerivationsAndMemoLimits exercises the limits added for the facade
// mapping: MaxDerivations bounds rule-body instantiations, MaxMemo the
// combined goal + answer memo size.
func TestMaxDerivationsAndMemoLimits(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(n0, Y)")
	_, err := Evaluate(ad, parentChain(50), Options{MaxDerivations: 10})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("expected ErrLimitExceeded with MaxDerivations, got %v", err)
	}
	_, err = Evaluate(ad, parentChain(50), Options{MaxMemo: 8})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("expected ErrLimitExceeded with MaxMemo, got %v", err)
	}
	if _, err := Evaluate(ad, parentChain(5), Options{MaxDerivations: 100000, MaxMemo: 100000}); err != nil {
		t.Errorf("generous limits must not trip, got %v", err)
	}
}

func TestLimits(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(n0, Y)")
	_, err := Evaluate(ad, parentChain(50), Options{MaxGoals: 5})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("expected ErrLimitExceeded with MaxGoals, got %v", err)
	}
	_, err = Evaluate(ad, parentChain(50), Options{MaxAnswers: 10})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("expected ErrLimitExceeded with MaxAnswers, got %v", err)
	}
	// On cyclic data the memo tables need several passes to converge, so a
	// one-pass limit must trip (a linear chain converges during the eager
	// recursive descent of the very first pass).
	cyclic := database.NewStore()
	for i := 0; i < 6; i++ {
		cyclic.MustAddFact(ast.NewAtom("par", ast.S(fmt.Sprintf("c%d", i)), ast.S(fmt.Sprintf("c%d", (i+1)%6))))
	}
	adCyclic := adorned(t, ancestorSrc, "anc(c0, Y)")
	_, err = Evaluate(adCyclic, cyclic, Options{MaxPasses: 1})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("expected ErrLimitExceeded with MaxPasses, got %v", err)
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	if _, err := Evaluate(nil, database.NewStore(), Options{}); err == nil {
		t.Error("nil adorned program must be rejected")
	}
	if _, err := Evaluate(&adorn.Program{}, database.NewStore(), Options{}); err == nil {
		t.Error("empty adorned program must be rejected")
	}
}

func TestQueryWithNoMatchingFacts(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(zz, Y)")
	res, err := Evaluate(ad, parentChain(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("expected no answers, got %v", res.Answers)
	}
	if res.Stats.Queries != 1 {
		t.Errorf("expected only the original goal, got %d", res.Stats.Queries)
	}
}

func TestFirstNShortCircuits(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(n0, Y)")
	edb := parentChain(40)
	full, err := Evaluate(ad, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(ad, edb, Options{FirstN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	if !res.Stats.StoppedEarly {
		t.Error("StoppedEarly = false")
	}
	if full.Stats.StoppedEarly {
		t.Error("full run reports StoppedEarly")
	}
	if res.Stats.Derivations >= full.Stats.Derivations {
		t.Errorf("FirstN run performed %d derivations, full run %d; expected a short-circuit",
			res.Stats.Derivations, full.Stats.Derivations)
	}
	// The truncated answers are sound: each occurs in the full answer set.
	want := full.AnswerSet()
	for _, a := range res.Answers {
		if !want[a.Key()] {
			t.Errorf("truncated answer %s not in the full answer set", a)
		}
	}
	// FirstN larger than the answer set behaves like a full run.
	all, err := Evaluate(ad, edb, Options{FirstN: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Answers) != len(full.Answers) || all.Stats.StoppedEarly {
		t.Errorf("FirstN=1000: %d answers (stopped early %v), want %d",
			len(all.Answers), all.Stats.StoppedEarly, len(full.Answers))
	}
}

func TestEvaluateCtxCancellation(t *testing.T) {
	ad := adorned(t, ancestorSrc, "anc(n0, Y)")
	edb := parentChain(30)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateCtx(pre, ad, edb, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled wrap", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	// A large cyclic graph keeps the evaluator busy across passes so the
	// deadline fires mid-evaluation rather than before it.
	big := database.NewStore()
	for i := 0; i < 400; i++ {
		for d := 1; d <= 3; d++ {
			big.MustAddFact(ast.NewAtom("par",
				ast.S(fmt.Sprintf("c%d", i)), ast.S(fmt.Sprintf("c%d", (i+d)%400))))
		}
	}
	start := time.Now()
	_, err := EvaluateCtx(ctx, adorned(t, ancestorSrc, "anc(c0, Y)"), big, Options{})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or context.DeadlineExceeded wrap", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("evaluation returned after %v, want prompt interruption", elapsed)
	}
}
