// Checkpoint files: a full EDB snapshot at one version, written streaming
// to a temp file and atomically renamed into place.
//
// Layout:
//
//	magic    "DLCKPT1\n" (8 bytes)
//	payload  uvarint version
//	         uvarint #relations
//	         per relation: string name, uvarint arity, uvarint #rows,
//	                       rows as arity consecutive terms each
//	trailer  crc32 (4 bytes LE) over the payload
//
// Strings and terms use the same binary encoding as log records. The
// trailer CRC makes a torn checkpoint (crash mid-rename never produces one,
// but disk corruption can) detectable: ReadCheckpoint verifies it before
// decoding anything.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/ast"
)

var checkpointMagic = []byte("DLCKPT1\n")

// CheckpointWriter streams one checkpoint to a temp file. Write the
// relations with Relation/Row, then call Commit to make it durable and
// visible; Abort discards it. A writer is single-goroutine.
type CheckpointWriter struct {
	log     *Log
	version uint64
	tmp     string
	final   string
	f       *os.File
	bw      *bufio.Writer
	crc     uint32
	buf     []byte

	relsDeclared int
	relsWritten  int
	rowsLeft     int
	arity        int
	done         bool
}

// BeginCheckpoint starts writing a checkpoint capturing the store at
// version. relations is the exact number of relations that will follow.
func (l *Log) BeginCheckpoint(version uint64, relations int) (*CheckpointWriter, error) {
	final := l.checkpointPath(version)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create checkpoint temp file: %w", err)
	}
	w := &CheckpointWriter{
		log:          l,
		version:      version,
		tmp:          tmp,
		final:        final,
		f:            f,
		bw:           bufio.NewWriterSize(f, 1<<20),
		relsDeclared: relations,
	}
	if _, err := w.bw.Write(checkpointMagic); err != nil {
		w.Abort()
		return nil, fmt.Errorf("wal: write checkpoint: %w", err)
	}
	w.buf = appendUvarint(w.buf[:0], version)
	w.buf = appendUvarint(w.buf, uint64(relations))
	if err := w.payload(w.buf); err != nil {
		w.Abort()
		return nil, err
	}
	return w, nil
}

// payload writes payload bytes, folding them into the running CRC.
func (w *CheckpointWriter) payload(p []byte) error {
	w.crc = crc32.Update(w.crc, crcTable, p)
	if _, err := w.bw.Write(p); err != nil {
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	return nil
}

// Relation begins the next relation: its store key (PredKey form), tuple
// width, and exact row count.
func (w *CheckpointWriter) Relation(name string, arity, rows int) error {
	if w.rowsLeft != 0 {
		return fmt.Errorf("wal: checkpoint relation started with %d rows of the previous one unwritten", w.rowsLeft)
	}
	if w.relsWritten >= w.relsDeclared {
		return fmt.Errorf("wal: checkpoint declared %d relations, got more", w.relsDeclared)
	}
	w.relsWritten++
	w.rowsLeft = rows
	w.arity = arity
	w.buf = appendString(w.buf[:0], name)
	w.buf = appendUvarint(w.buf, uint64(arity))
	w.buf = appendUvarint(w.buf, uint64(rows))
	return w.payload(w.buf)
}

// Row writes one tuple of the current relation.
func (w *CheckpointWriter) Row(terms []ast.Term) error {
	if w.rowsLeft <= 0 {
		return fmt.Errorf("wal: checkpoint row past the declared count")
	}
	if len(terms) != w.arity {
		return fmt.Errorf("wal: checkpoint row width %d, relation arity %d", len(terms), w.arity)
	}
	w.rowsLeft--
	w.buf = w.buf[:0]
	for _, t := range terms {
		w.buf = appendTerm(w.buf, t)
	}
	return w.payload(w.buf)
}

// Commit finalizes the checkpoint: CRC trailer, fsync, atomic rename,
// directory fsync. After Commit returns nil the checkpoint is the one
// recovery will load, and log segments ≤ its version may be truncated.
func (w *CheckpointWriter) Commit() error {
	if w.done {
		return fmt.Errorf("wal: checkpoint writer already finished")
	}
	if w.rowsLeft != 0 || w.relsWritten != w.relsDeclared {
		w.Abort()
		return fmt.Errorf("wal: checkpoint incomplete: %d/%d relations, %d rows missing",
			w.relsWritten, w.relsDeclared, w.rowsLeft)
	}
	w.done = true
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], w.crc)
	if _, err := w.bw.Write(trailer[:]); err != nil {
		w.abortFile()
		return fmt.Errorf("wal: write checkpoint trailer: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.abortFile()
		return fmt.Errorf("wal: flush checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.abortFile()
		return fmt.Errorf("wal: fsync checkpoint: %w", err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	if err := syncDir(filepath.Dir(w.final)); err != nil {
		return err
	}
	w.log.mu.Lock()
	if w.version > w.log.lastCheckpoint {
		w.log.lastCheckpoint = w.version
	}
	w.log.mu.Unlock()
	return nil
}

// Abort discards an unfinished checkpoint.
func (w *CheckpointWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.abortFile()
}

func (w *CheckpointWriter) abortFile() {
	w.f.Close()
	os.Remove(w.tmp)
}

// CheckpointRelation is one relation of a decoded checkpoint.
type CheckpointRelation struct {
	// Name is the store key (PredKey form: "anc" or "sg^bf").
	Name  string
	Arity int
	Rows  [][]ast.Term
}

// ReadCheckpoint decodes a checkpoint file, delivering each relation to fn
// in file order, and returns the version it captures. The CRC trailer is
// verified before anything is decoded; any failure is a *CorruptError.
func ReadCheckpoint(path string, fn func(rel CheckpointRelation) error) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: read checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+4 {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: "checkpoint shorter than magic + trailer"}
	}
	if string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: "bad checkpoint magic"}
	}
	payload := data[len(checkpointMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return 0, &CorruptError{Path: path, Offset: int64(len(data) - 4), Reason: "checkpoint CRC mismatch"}
	}
	d := &decoder{data: payload, base: int64(len(checkpointMagic)), path: path}
	version, err := d.uvarint("checkpoint version")
	if err != nil {
		return 0, err
	}
	nRels, err := d.uvarint("relation count")
	if err != nil {
		return 0, err
	}
	if nRels > uint64(d.remaining()+1) {
		return 0, d.fail(fmt.Sprintf("relation count %d exceeds remaining %d bytes", nRels, d.remaining()))
	}
	for i := uint64(0); i < nRels; i++ {
		name, err := d.string("relation name")
		if err != nil {
			return 0, err
		}
		arity, err := d.uvarint("relation arity")
		if err != nil {
			return 0, err
		}
		nRows, err := d.uvarint("row count")
		if err != nil {
			return 0, err
		}
		// Every row costs at least arity tag bytes (or 1 for arity 0 is
		// free, so only bound when arity > 0).
		if arity > 0 && nRows > uint64(d.remaining())/arity+1 {
			return 0, d.fail(fmt.Sprintf("row count %d exceeds remaining %d bytes", nRows, d.remaining()))
		}
		if nRows > 1 && arity == 0 {
			return 0, d.fail(fmt.Sprintf("zero-arity relation with %d rows", nRows))
		}
		rel := CheckpointRelation{Name: name, Arity: int(arity)}
		rel.Rows = make([][]ast.Term, nRows)
		for r := range rel.Rows {
			row := make([]ast.Term, arity)
			for c := range row {
				t, err := d.term(0)
				if err != nil {
					return 0, err
				}
				row[c] = t
			}
			rel.Rows[r] = row
		}
		if err := fn(rel); err != nil {
			return 0, err
		}
	}
	if d.off != len(payload) {
		return 0, d.fail(fmt.Sprintf("%d trailing bytes after checkpoint payload", len(payload)-d.off))
	}
	return version, nil
}
