package wal

import (
	"errors"
	"os"
	"testing"

	"repro/internal/ast"
)

// FuzzDecodeRecord pins the recovery safety property: whatever bytes a
// crashed, bit-rotted or malicious log file contains, decodeRecord either
// returns a record that survives an encode/decode roundtrip or a clean
// *CorruptError matching ErrCorruptLog — it never panics and never reads
// out of bounds. The seed corpus holds valid frames of every shape plus
// systematic single-byte flips of a valid frame; the fuzzer mutates from
// there.
func FuzzDecodeRecord(f *testing.F) {
	seeds := [][]byte{
		nil,
		{},
		{recordFormat},
		appendRecord(nil, KindSeal, 0, nil, nil),
		appendRecord(nil, KindCommit, 1, nil, []ast.Atom{atom("edge", "a", "b")}),
		appendRecord(nil, KindCommit, 7,
			[]ast.Atom{atom("edge", "a", "b")},
			[]ast.Atom{
				{Pred: "m", Adorn: "bf", Args: []ast.Term{ast.Int{Value: -5}, ast.Sym{Name: "x"}}},
				{Pred: "deep", Args: []ast.Term{ast.Compound{Functor: "f", Args: []ast.Term{
					ast.Compound{Functor: "g", Args: []ast.Term{ast.Int{Value: 1}}},
				}}}},
			}),
	}
	// Two valid frames back to back: decoding must consume exactly the
	// first.
	double := appendRecord(nil, KindCommit, 1, nil, []ast.Atom{atom("p", "x")})
	double = appendRecord(double, KindCommit, 2, nil, []ast.Atom{atom("p", "y")})
	seeds = append(seeds, double)
	// Bit-flips of a valid frame at every byte position: header fields,
	// CRC, lengths, tags and string bytes each get corrupted in some seed.
	valid := appendRecord(nil, KindCommit, 3,
		[]ast.Atom{atom("q", "u")},
		[]ast.Atom{{Pred: "r", Args: []ast.Term{ast.Int{Value: 300}, ast.Sym{Name: "long-symbol-name"}}}})
	for i := range valid {
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 0x80
		seeds = append(seeds, flipped)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data, 0, "fuzz")
		if err != nil {
			var ce *CorruptError
			if !errors.Is(err, ErrCorruptLog) || !errors.As(err, &ce) {
				t.Fatalf("decode error %v is not a CorruptError", err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(data)) {
				t.Fatalf("corruption offset %d outside [0,%d]", ce.Offset, len(data))
			}
			return
		}
		if n < headerSize || n > len(data) {
			t.Fatalf("decoded length %d outside [%d,%d]", n, headerSize, len(data))
		}
		// A successfully decoded record must roundtrip: re-encoding it
		// reproduces the exact consumed bytes (the encoding is canonical).
		again := appendRecord(nil, rec.Kind, rec.Version, rec.Retracts, rec.Asserts)
		if string(again) != string(data[:n]) {
			t.Fatalf("roundtrip mismatch:\n got %x\nwant %x", again, data[:n])
		}
	})
}

// FuzzReadCheckpoint extends the same property to checkpoint files.
func FuzzReadCheckpoint(f *testing.F) {
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := l.Replay(0, func(Record) error { return nil }); err != nil {
		f.Fatal(err)
	}
	w, err := l.BeginCheckpoint(5, 2)
	if err != nil {
		f.Fatal(err)
	}
	w.Relation("edge", 2, 1)
	w.Row([]ast.Term{ast.Sym{Name: "a"}, ast.Int{Value: 2}})
	w.Relation("flag", 0, 1)
	w.Row(nil)
	if err := w.Commit(); err != nil {
		f.Fatal(err)
	}
	_, path, _ := l.LatestCheckpoint()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	l.Close()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(checkpointMagic)
	for i := range valid {
		flipped := append([]byte(nil), valid...)
		flipped[i] ^= 0x01
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := t.TempDir() + "/c.ckpt"
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		_, err := ReadCheckpoint(p, func(CheckpointRelation) error { return nil })
		if err != nil && !errors.Is(err, ErrCorruptLog) {
			t.Fatalf("checkpoint decode error %v is not ErrCorruptLog", err)
		}
	})
}
