// Record framing and the binary term encoding of the write-ahead log.
//
// Every committed batch becomes exactly one framed record:
//
//	header  [ver:1][kind:1][len:4 LE][crc32:4 LE]   (10 bytes)
//	payload uvarint commitVersion
//	        uvarint #retracts, then that many atoms
//	        uvarint #asserts,  then that many atoms
//
// An atom is [uvarint len pred][pred][uvarint len adorn][adorn]
// [uvarint arity][terms]; a term is one tag byte followed by its data —
// symbols as length-prefixed strings, integers as zigzag varints, compound
// terms as functor + argument count + arguments, recursively. The CRC32
// (Castagnoli) covers the payload only, so a header surviving a torn write
// with a garbled payload still fails verification.
//
// The decoder is defensive by construction: every length is checked against
// the remaining bytes before any allocation, term nesting is depth-capped,
// and every failure — short frame, bad magic, CRC mismatch, malformed
// payload — is a *CorruptError carrying the absolute byte offset and
// matching ErrCorruptLog via errors.Is. It never panics on arbitrary input
// (pinned by FuzzDecodeRecord).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/ast"
)

// Record kinds. KindCommit carries one committed batch; KindSeal is the
// empty clean-shutdown marker Log.Seal appends on Close.
const (
	KindCommit byte = 1
	KindSeal   byte = 2
)

// recordFormat is the framing format version stamped into every record
// header; a record with an unknown format version fails decoding.
const recordFormat byte = 1

// headerSize is the fixed record header length.
const headerSize = 10

// maxRecordBytes bounds a single record's payload: a declared length beyond
// it is treated as corruption rather than an allocation request.
const maxRecordBytes = 64 << 20

// maxTermDepth caps term nesting during decode. Legitimate data (long cons
// lists) nests one level per element, so the cap is generous; its job is to
// keep a crafted or corrupted payload from overflowing the stack.
const maxTermDepth = 1 << 16

// crcTable is the Castagnoli table shared by records and checkpoints.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptLog is the sentinel every decoding failure matches via
// errors.Is: a corrupt or truncated log never panics replay, it surfaces as
// a clean error with a byte offset (see CorruptError).
var ErrCorruptLog = errors.New("wal: corrupt log")

// CorruptError reports a decoding failure at an absolute byte offset of the
// file being read. It matches ErrCorruptLog via errors.Is.
type CorruptError struct {
	// Path is the file the corruption was found in ("" when decoding a
	// detached buffer).
	Path string
	// Offset is the absolute byte offset of the failure.
	Offset int64
	// Reason describes the failure.
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("wal: corrupt log at byte %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("wal: corrupt log: %s at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Is makes errors.Is(err, ErrCorruptLog) match every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorruptLog }

// Record is one decoded log record.
type Record struct {
	Kind byte
	// Version is the commit version the batch committed as (for KindSeal,
	// the last version in the log when it was sealed).
	Version  uint64
	Retracts []ast.Atom
	Asserts  []ast.Atom
}

// Term tags of the binary encoding.
const (
	tagSym  byte = 0
	tagInt  byte = 1
	tagComp byte = 2
)

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTerm appends the binary encoding of a ground term.
func appendTerm(dst []byte, t ast.Term) []byte {
	switch x := t.(type) {
	case ast.Sym:
		dst = append(dst, tagSym)
		return appendString(dst, x.Name)
	case ast.Int:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, x.Value)
	case ast.Compound:
		dst = append(dst, tagComp)
		dst = appendString(dst, x.Functor)
		dst = appendUvarint(dst, uint64(len(x.Args)))
		for _, a := range x.Args {
			dst = appendTerm(dst, a)
		}
		return dst
	default:
		panic(fmt.Sprintf("wal: cannot encode non-ground term %v", t))
	}
}

// appendAtom appends the binary encoding of a ground atom.
func appendAtom(dst []byte, a ast.Atom) []byte {
	dst = appendString(dst, a.Pred)
	dst = appendString(dst, string(a.Adorn))
	dst = appendUvarint(dst, uint64(len(a.Args)))
	for _, t := range a.Args {
		dst = appendTerm(dst, t)
	}
	return dst
}

// appendRecord appends one framed record (header + payload) for the given
// batch and returns the extended buffer.
func appendRecord(dst []byte, kind byte, version uint64, retracts, asserts []ast.Atom) []byte {
	start := len(dst)
	dst = append(dst, recordFormat, kind, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendUvarint(dst, version)
	dst = appendUvarint(dst, uint64(len(retracts)))
	for _, a := range retracts {
		dst = appendAtom(dst, a)
	}
	dst = appendUvarint(dst, uint64(len(asserts)))
	for _, a := range asserts {
		dst = appendAtom(dst, a)
	}
	payload := dst[start+headerSize:]
	binary.LittleEndian.PutUint32(dst[start+2:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+6:], crc32.Checksum(payload, crcTable))
	return dst
}

// decoder walks a byte buffer, converting every malformed read into a
// CorruptError at the right absolute offset.
type decoder struct {
	data []byte
	off  int
	// base is the absolute file offset of data[0], so errors report file
	// positions, not buffer positions.
	base int64
	path string
}

func (d *decoder) fail(reason string) *CorruptError {
	return &CorruptError{Path: d.path, Offset: d.base + int64(d.off), Reason: reason}
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.fail("truncated or overlong varint in " + what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.fail("truncated or overlong varint in " + what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) string(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", d.fail(fmt.Sprintf("%s length %d exceeds remaining %d bytes", what, n, d.remaining()))
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// term decodes one term at the given nesting depth.
func (d *decoder) term(depth int) (ast.Term, error) {
	if depth > maxTermDepth {
		return nil, d.fail("term nesting exceeds the depth cap")
	}
	if d.remaining() < 1 {
		return nil, d.fail("truncated term tag")
	}
	tag := d.data[d.off]
	d.off++
	switch tag {
	case tagSym:
		name, err := d.string("symbol")
		if err != nil {
			return nil, err
		}
		return ast.Sym{Name: name}, nil
	case tagInt:
		v, err := d.varint("integer")
		if err != nil {
			return nil, err
		}
		return ast.Int{Value: v}, nil
	case tagComp:
		functor, err := d.string("functor")
		if err != nil {
			return nil, err
		}
		argc, err := d.uvarint("argument count")
		if err != nil {
			return nil, err
		}
		// Every argument costs at least one tag byte, so the count cannot
		// exceed the remaining bytes: checked before allocating.
		if argc > uint64(d.remaining()) {
			return nil, d.fail(fmt.Sprintf("argument count %d exceeds remaining %d bytes", argc, d.remaining()))
		}
		args := make([]ast.Term, argc)
		for i := range args {
			a, err := d.term(depth + 1)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return ast.Compound{Functor: functor, Args: args}, nil
	default:
		return nil, d.fail(fmt.Sprintf("unknown term tag %d", tag))
	}
}

// atom decodes one atom.
func (d *decoder) atom() (ast.Atom, error) {
	pred, err := d.string("predicate name")
	if err != nil {
		return ast.Atom{}, err
	}
	if pred == "" {
		return ast.Atom{}, d.fail("empty predicate name")
	}
	adorn, err := d.string("adornment")
	if err != nil {
		return ast.Atom{}, err
	}
	arity, err := d.uvarint("arity")
	if err != nil {
		return ast.Atom{}, err
	}
	if arity > uint64(d.remaining()) {
		return ast.Atom{}, d.fail(fmt.Sprintf("arity %d exceeds remaining %d bytes", arity, d.remaining()))
	}
	var args []ast.Term
	if arity > 0 {
		args = make([]ast.Term, arity)
		for i := range args {
			t, err := d.term(0)
			if err != nil {
				return ast.Atom{}, err
			}
			args[i] = t
		}
	}
	return ast.Atom{Pred: pred, Adorn: ast.Adornment(adorn), Args: args}, nil
}

// atoms decodes a length-prefixed atom list.
func (d *decoder) atoms(what string) ([]ast.Atom, error) {
	n, err := d.uvarint(what + " count")
	if err != nil {
		return nil, err
	}
	// An atom costs at least 3 bytes (two empty strings + arity).
	if n > uint64(d.remaining()/3+1) {
		return nil, d.fail(fmt.Sprintf("%s count %d exceeds remaining %d bytes", what, n, d.remaining()))
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]ast.Atom, n)
	for i := range out {
		a, err := d.atom()
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// decodeRecord decodes one framed record from data (whose first byte sits at
// absolute file offset base in file path). It returns the record and the
// total number of bytes consumed. Any failure — a frame extending past the
// buffer, a CRC mismatch, a malformed payload — is a *CorruptError; the
// caller decides whether the failure is a torn tail (end replay cleanly) or
// hard corruption (fail recovery).
func decodeRecord(data []byte, base int64, path string) (Record, int, error) {
	fail := func(off int, reason string) (Record, int, error) {
		return Record{}, 0, &CorruptError{Path: path, Offset: base + int64(off), Reason: reason}
	}
	if len(data) < headerSize {
		return fail(0, fmt.Sprintf("truncated record header: %d of %d bytes", len(data), headerSize))
	}
	if data[0] != recordFormat {
		return fail(0, fmt.Sprintf("unknown record format version %d", data[0]))
	}
	kind := data[1]
	if kind != KindCommit && kind != KindSeal {
		return fail(1, fmt.Sprintf("unknown record kind %d", kind))
	}
	plen := binary.LittleEndian.Uint32(data[2:])
	if plen > maxRecordBytes {
		return fail(2, fmt.Sprintf("declared payload length %d exceeds the %d-byte record cap", plen, maxRecordBytes))
	}
	if uint64(plen) > uint64(len(data)-headerSize) {
		return fail(2, fmt.Sprintf("payload length %d exceeds remaining %d bytes", plen, len(data)-headerSize))
	}
	payload := data[headerSize : headerSize+int(plen)]
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(data[6:]) {
		return fail(6, "payload CRC mismatch")
	}
	d := &decoder{data: payload, base: base + headerSize, path: path}
	version, err := d.uvarint("commit version")
	if err != nil {
		return Record{}, 0, err
	}
	rec := Record{Kind: kind, Version: version}
	// Seal records carry empty lists; decoding them uniformly keeps the
	// frame layout identical across kinds.
	if rec.Retracts, err = d.atoms("retract"); err != nil {
		return Record{}, 0, err
	}
	if rec.Asserts, err = d.atoms("assert"); err != nil {
		return Record{}, 0, err
	}
	if d.off != len(payload) {
		return Record{}, 0, d.fail(fmt.Sprintf("%d trailing bytes after record payload", len(payload)-d.off))
	}
	return rec, headerSize + int(plen), nil
}
