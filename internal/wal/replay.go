// Log replay: scanning the segment sequence on open, distinguishing a torn
// tail (tolerated) from mid-log corruption (fatal), and positioning the log
// for appending.
package wal

import (
	"fmt"
	"os"
)

// ReplayInfo summarizes what Replay found.
type ReplayInfo struct {
	// Records is the number of commit records delivered to the callback.
	Records int
	// Bytes is the total size of the scanned segments.
	Bytes int64
	// LastVersion is the version the replayed prefix ends at (equal to the
	// `from` argument when the log held nothing newer).
	LastVersion uint64
	// TornTail reports that the final segment ended in a torn or corrupt
	// record, which was truncated away.
	TornTail bool
	// TornOffset is the byte offset the tail was truncated at (only
	// meaningful when TornTail is set).
	TornOffset int64
	// Sealed reports that the log ended with a clean-shutdown seal record.
	Sealed bool
}

// Replay scans every segment in order, delivering each committed batch with
// version > from to fn in commit order, and then positions the log so
// subsequent Appends continue the sequence. It must be called exactly once,
// before any Append — including on a fresh, empty directory.
//
// Failure policy (the recovery invariant): a record that fails to decode in
// the final segment is a torn tail — the write that was in flight when the
// process died — so the tail is truncated at the failure offset and replay
// ends cleanly. The same failure in any earlier segment cannot be explained
// by a crash mid-append (later segments exist, so appends moved on) and is
// reported as ErrCorruptLog with the byte offset. A gap in the version
// sequence is likewise fatal: it means acknowledged commits are missing.
//
// An error from fn aborts replay as-is (it is an apply failure, not log
// corruption).
func (l *Log) Replay(from uint64, fn func(Record) error) (ReplayInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ReplayInfo{}, fmt.Errorf("wal: log is closed")
	}
	if l.f != nil {
		return ReplayInfo{}, fmt.Errorf("wal: replay after append")
	}
	info := ReplayInfo{LastVersion: from}
	last := from
	for i, seg := range l.segments {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return info, fmt.Errorf("wal: read segment: %w", err)
		}
		info.Bytes += int64(len(data))
		off := 0
		for off < len(data) {
			rec, n, derr := decodeRecord(data[off:], int64(off), seg.path)
			if derr != nil {
				if i == len(l.segments)-1 {
					// Torn tail: truncate the in-flight write away so the
					// next append starts on a clean frame boundary.
					if err := os.Truncate(seg.path, int64(off)); err != nil {
						return info, fmt.Errorf("wal: truncate torn tail: %w", err)
					}
					info.TornTail = true
					info.TornOffset = int64(off)
					info.Bytes -= int64(len(data) - off)
					data = data[:off]
					break
				}
				return info, derr
			}
			switch rec.Kind {
			case KindSeal:
				info.Sealed = true
			case KindCommit:
				info.Sealed = false
				if rec.Version <= from {
					// Already captured by the checkpoint being recovered
					// from; the segment holding it just wasn't truncated yet.
					break
				}
				if rec.Version != last+1 {
					return info, &CorruptError{
						Path:   seg.path,
						Offset: int64(off),
						Reason: fmt.Sprintf("version gap: record %d after %d", rec.Version, last),
					}
				}
				if err := fn(rec); err != nil {
					return info, err
				}
				last = rec.Version
				info.Records++
			}
			off += n
		}
		if i == len(l.segments)-1 {
			// Reopen the final segment for appending at its (possibly
			// truncated) end.
			f, err := os.OpenFile(seg.path, os.O_WRONLY, 0o644)
			if err != nil {
				return info, fmt.Errorf("wal: reopen segment: %w", err)
			}
			end := int64(len(data))
			if _, err := f.Seek(end, 0); err != nil {
				f.Close()
				return info, fmt.Errorf("wal: seek segment end: %w", err)
			}
			l.f = f
			l.size = end
		}
	}
	info.LastVersion = last
	l.lastVer = last
	return info, nil
}
