// Package wal implements the durability subsystem: a segmented, CRC-framed
// write-ahead log of commit batches, full-EDB checkpoint files, and
// torn-tail-tolerant replay.
//
// A Log lives in one directory:
//
//	wal-%016x.log        log segments, named by the first commit version
//	                     they contain; the highest-named segment is active
//	checkpoint-%016x.ckpt EDB snapshots, named by the version they capture
//	*.tmp                in-progress checkpoints (deleted on Open)
//
// The contract the datalog layer builds on: a batch is appended (and, under
// SyncAlways, fsynced) before the in-memory store applies it, so an
// acknowledged commit is durable and recovery replays exactly the prefix of
// acknowledged commits. Checkpoints are written from an immutable snapshot
// to a temp file and atomically renamed, so a crash at any point leaves
// either the old recovery state or the new one, never a torn mix; log
// segments are only deleted once a checkpoint at a covering version is
// durably in place.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: an acknowledged commit has
	// reached stable storage. The only policy under which
	// acknowledged-implies-durable holds against power loss.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs from a background ticker (and on Seal/Sync/Close):
	// a crash loses at most the last interval of acknowledged commits, but
	// recovery still sees a clean prefix.
	SyncInterval SyncPolicy = "interval"
	// SyncNone never fsyncs except on Seal/Sync/Close: durability is left
	// to the operating system's writeback.
	SyncNone SyncPolicy = "none"
)

// Defaults for zero-valued Options fields.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultSyncInterval = 50 * time.Millisecond
)

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy; zero value means SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it reaches this size.
	SegmentBytes int64
}

// Stats is a point-in-time snapshot of the log's counters. Counters cover
// this process's lifetime, not the whole on-disk history.
type Stats struct {
	// RecordsAppended counts commit records appended.
	RecordsAppended uint64
	// BytesAppended counts bytes appended (headers included).
	BytesAppended uint64
	// Fsyncs counts fsync calls on segment files.
	Fsyncs uint64
	// Segments is the number of on-disk log segments.
	Segments int
	// LastCheckpoint is the version of the newest durable checkpoint file
	// (0 when none exists).
	LastCheckpoint uint64
}

type segment struct {
	start uint64 // first commit version the segment contains
	path  string
}

// Log is a segmented write-ahead log rooted at one directory. All methods
// are safe for concurrent use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment, nil until the first append or replay
	size     int64    // active segment size
	segments []segment
	lastVer  uint64 // last commit version appended or replayed
	buf      []byte // scratch encode buffer, reused across appends
	dirty    bool   // unsynced bytes in the active segment
	closed   bool

	records uint64
	bytes   uint64
	fsyncs  atomic.Uint64 // also bumped by the interval goroutine

	lastCheckpoint uint64

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if necessary) the log directory, removes leftover
// temp files from interrupted checkpoints, and indexes the existing
// segments and checkpoints. The log is not readable or appendable until
// Replay has run — Replay establishes the append position even when the
// directory is empty.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Sync == "" {
		opts.Sync = SyncAlways
	}
	switch opts.Sync {
	case SyncAlways, SyncInterval, SyncNone:
	default:
		return nil, fmt.Errorf("wal: unknown sync policy %q", opts.Sync)
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create directory: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted checkpoint; its rename never happened, so it is
			// invisible to recovery and safe to drop.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove stale temp file: %w", err)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var start uint64
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &start); err != nil {
				return nil, fmt.Errorf("wal: unparseable segment name %q", name)
			}
			l.segments = append(l.segments, segment{start: start, path: filepath.Join(dir, name)})
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			var v uint64
			if _, err := fmt.Sscanf(name, "checkpoint-%016x.ckpt", &v); err != nil {
				return nil, fmt.Errorf("wal: unparseable checkpoint name %q", name)
			}
			if v > l.lastCheckpoint {
				l.lastCheckpoint = v
			}
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i].start < l.segments[j].start })
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// syncLoop is the background fsync ticker for SyncInterval.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			l.syncLocked()
			l.mu.Unlock()
		}
	}
}

// syncLocked fsyncs the active segment if it has unsynced bytes. Callers
// hold l.mu. The error (rare: the device failing) is returned for explicit
// Sync/Seal callers; the ticker drops it, the next append or sync retries.
func (l *Log) syncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

// segmentPath names the segment whose first commit version is start.
func (l *Log) segmentPath(start uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%016x.log", start))
}

// checkpointPath names the checkpoint capturing version v.
func (l *Log) checkpointPath(v uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("checkpoint-%016x.ckpt", v))
}

// rotateLocked closes the active segment (fsyncing pending bytes) and
// starts a fresh one whose first record will be version start.
func (l *Log) rotateLocked(start uint64) error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.f = nil
	}
	path := l.segmentPath(start)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	// Make the new segment's directory entry durable so recovery after a
	// crash sees the same segment sequence appends went to.
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = 0
	l.segments = append(l.segments, segment{start: start, path: path})
	return nil
}

// Append encodes one committed batch as a framed record, writes it to the
// active segment, and applies the fsync policy. version must be the store
// version the batch commits as; appends must arrive in version order.
// When Append returns nil under SyncAlways, the record is on stable
// storage. On error the segment is truncated back to the pre-append offset,
// so a failed append never leaves a partial frame for a later one to bury.
func (l *Log) Append(version uint64, retracts, asserts []ast.Atom) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if version != l.lastVer+1 {
		return fmt.Errorf("wal: out-of-order append: version %d after %d", version, l.lastVer)
	}
	if l.f == nil || l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(version); err != nil {
			return err
		}
	}
	l.buf = appendRecord(l.buf[:0], KindCommit, version, retracts, asserts)
	if _, err := l.f.Write(l.buf); err != nil {
		// Restore the pre-append offset: a short write must not leave bytes
		// for the next append to land after.
		l.f.Truncate(l.size)
		l.f.Seek(l.size, 0)
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(l.buf))
	l.records++
	l.bytes += uint64(len(l.buf))
	l.lastVer = version
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync forces pending appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// Seal appends a clean-shutdown marker and fsyncs. A sealed tail lets a
// reader distinguish "process exited cleanly" from "tail may be torn",
// though replay treats both safely.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.f == nil {
		// Nothing was ever appended; an empty log needs no seal.
		return nil
	}
	l.buf = appendRecord(l.buf[:0], KindSeal, l.lastVer, nil, nil)
	if _, err := l.f.Write(l.buf); err != nil {
		l.f.Truncate(l.size)
		l.f.Seek(l.size, 0)
		return fmt.Errorf("wal: seal: %w", err)
	}
	l.size += int64(len(l.buf))
	l.bytes += uint64(len(l.buf))
	l.dirty = true
	return l.syncLocked()
}

// Close seals the log, stops the background syncer, and closes the active
// segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	sealErr := l.Seal()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.f != nil {
		if err := l.f.Close(); err != nil && sealErr == nil {
			sealErr = fmt.Errorf("wal: close segment: %w", err)
		}
		l.f = nil
	}
	return sealErr
}

// TruncateThrough deletes log segments whose every record has version ≤ v,
// plus checkpoint files older than the newest one. The active (last)
// segment is never deleted. It returns the number of segments removed.
// Callers must only pass a v for which a checkpoint at version ≥ v is
// durably on disk — the records being deleted are the only other copy.
func (l *Log) TruncateThrough(v uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	// Segment i's records all have versions < segments[i+1].start, so it is
	// fully covered once segments[i+1].start <= v+1.
	for len(l.segments) > 1 && l.segments[1].start <= v+1 {
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: remove segment: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	// Older checkpoints are strictly dominated by the newest one.
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return removed, fmt.Errorf("wal: read directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		var cv uint64
		if _, err := fmt.Sscanf(name, "checkpoint-%016x.ckpt", &cv); err == nil && cv < l.lastCheckpoint {
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
				return removed, fmt.Errorf("wal: remove checkpoint: %w", err)
			}
		}
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// LatestCheckpoint returns the version and path of the newest durable
// checkpoint, or ok=false when none exists.
func (l *Log) LatestCheckpoint() (version uint64, path string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastCheckpoint == 0 {
		return 0, "", false
	}
	return l.lastCheckpoint, l.checkpointPath(l.lastCheckpoint), true
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		RecordsAppended: l.records,
		BytesAppended:   l.bytes,
		Fsyncs:          l.fsyncs.Load(),
		Segments:        len(l.segments),
		LastCheckpoint:  l.lastCheckpoint,
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open directory for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync directory: %w", err)
	}
	return nil
}
