package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
)

// atom builds a ground test atom over symbol arguments.
func atom(pred string, args ...string) ast.Atom {
	terms := make([]ast.Term, len(args))
	for i, a := range args {
		terms[i] = ast.Sym{Name: a}
	}
	return ast.Atom{Pred: pred, Args: terms}
}

// openReplayed opens a log and replays it, returning the log, the replay
// info and the collected commit records.
func openReplayed(t *testing.T, dir string, opts Options) (*Log, ReplayInfo, []Record) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var recs []Record
	info, err := l.Replay(0, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return l, info, recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, info, recs := openReplayed(t, dir, Options{})
	if info.Records != 0 || len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", info.Records)
	}
	batches := []struct {
		retracts, asserts []ast.Atom
	}{
		{nil, []ast.Atom{atom("edge", "a", "b"), atom("edge", "b", "c")}},
		{[]ast.Atom{atom("edge", "a", "b")}, []ast.Atom{atom("node", "x")}},
		{nil, []ast.Atom{{Pred: "measure", Args: []ast.Term{
			ast.Int{Value: -42},
			ast.Compound{Functor: "pair", Args: []ast.Term{ast.Sym{Name: "u"}, ast.Int{Value: 7}}},
		}}}},
	}
	for i, b := range batches {
		if err := l.Append(uint64(i+1), b.retracts, b.asserts); err != nil {
			t.Fatalf("Append %d: %v", i+1, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, info2, recs2 := openReplayed(t, dir, Options{})
	defer l2.Close()
	if info2.Records != len(batches) {
		t.Fatalf("replayed %d records, want %d", info2.Records, len(batches))
	}
	if !info2.Sealed {
		t.Fatalf("clean-closed log not reported sealed")
	}
	if info2.LastVersion != uint64(len(batches)) {
		t.Fatalf("LastVersion = %d, want %d", info2.LastVersion, len(batches))
	}
	for i, rec := range recs2 {
		if rec.Version != uint64(i+1) {
			t.Fatalf("record %d has version %d", i, rec.Version)
		}
		want := batches[i]
		if len(rec.Retracts) != len(want.retracts) || len(rec.Asserts) != len(want.asserts) {
			t.Fatalf("record %d shape mismatch: %+v", i, rec)
		}
		for j, a := range rec.Asserts {
			if a.String() != want.asserts[j].String() {
				t.Fatalf("record %d assert %d: got %s want %s", i, j, a, want.asserts[j])
			}
		}
		for j, a := range rec.Retracts {
			if a.String() != want.retracts[j].String() {
				t.Fatalf("record %d retract %d: got %s want %s", i, j, a, want.retracts[j])
			}
		}
	}

	// Appends continue the version sequence after replay.
	if err := l2.Append(uint64(len(batches))+2, nil, []ast.Atom{atom("p", "x")}); err == nil {
		t.Fatalf("out-of-order append accepted")
	}
	if err := l2.Append(uint64(len(batches))+1, nil, []ast.Atom{atom("p", "x")}); err != nil {
		t.Fatalf("continuing append: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, headerSize, headerSize + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := openReplayed(t, dir, Options{})
			for v := uint64(1); v <= 3; v++ {
				if err := l.Append(v, nil, []ast.Atom{atom("p", fmt.Sprint(v))}); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			// Simulate a torn write: keep a prefix of the fourth record.
			full := appendRecord(nil, KindCommit, 4, nil, []ast.Atom{atom("p", "4")})
			if cut > len(full) {
				t.Skip("cut longer than record")
			}
			seg := l.segments[len(l.segments)-1].path
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(full[:cut])
			f.Close()
			// Abandon l without Close (a seal would hide the torn tail).

			l2, info, _ := openReplayed(t, dir, Options{})
			defer l2.Close()
			if info.Records != 3 || info.LastVersion != 3 {
				t.Fatalf("replay got %d records to version %d, want 3", info.Records, info.LastVersion)
			}
			if !info.TornTail {
				t.Fatalf("torn tail not reported")
			}
			if info.Sealed {
				t.Fatalf("torn log reported sealed")
			}
			// The tail was physically truncated: a new append must produce a
			// cleanly replayable log.
			if err := l2.Append(4, nil, []ast.Atom{atom("q", "4")}); err != nil {
				t.Fatalf("append after torn-tail recovery: %v", err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, info3, recs := openReplayed(t, dir, Options{})
			defer l3.Close()
			if info3.TornTail || info3.Records != 4 {
				t.Fatalf("after repair: %+v", info3)
			}
			if got := recs[3].Asserts[0].Pred; got != "q" {
				t.Fatalf("record 4 pred = %q", got)
			}
		})
	}
}

func TestCorruptionInSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{SegmentBytes: 1}) // rotate every append
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(v, nil, []ast.Atom{atom("p", fmt.Sprint(v))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()
	// Flip a payload byte in the FIRST segment: not the active tail, so this
	// is unexplainable by a crash mid-append and must fail recovery.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	data, _ := os.ReadFile(segs[0])
	data[headerSize] ^= 0xff
	os.WriteFile(segs[0], data, 0o644)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_, err = l2.Replay(0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("replay error = %v, want ErrCorruptLog", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v carries no CorruptError", err)
	}
}

func TestVersionGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{})
	l.Append(1, nil, []ast.Atom{atom("p", "1")})
	l.Close()
	// Forge a segment that skips version 2.
	forged := appendRecord(nil, KindCommit, 3, nil, []ast.Atom{atom("p", "3")})
	seg := l.segments[0].path
	f, _ := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	f.Write(forged)
	f.Close()
	l2, _ := Open(dir, Options{})
	_, err := l2.Replay(0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("gap replay error = %v, want ErrCorruptLog", err)
	}
}

func TestSegmentRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{SegmentBytes: 1})
	const n = 6
	for v := uint64(1); v <= n; v++ {
		if err := l.Append(v, nil, []ast.Atom{atom("p", fmt.Sprint(v))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.Stats().Segments; got != n {
		t.Fatalf("segments = %d, want %d (1-byte rotation)", got, n)
	}
	// A checkpoint at version 4 covers segments 1..4 exactly.
	w, err := l.BeginCheckpoint(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	removed, err := l.TruncateThrough(4)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if removed != 4 {
		t.Fatalf("removed %d segments, want 4", removed)
	}
	l.Close()

	// Replay(0) on the truncated log ignores the checkpoint it needs: the
	// version-gap check must catch that rather than return partial state.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Replay(0, func(Record) error { return nil }); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Replay(0) after truncation = %v, want ErrCorruptLog", err)
	}
	// Replaying from the checkpoint version sees exactly 5 and 6.
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	info3, err := l3.Replay(4, func(r Record) error {
		got = append(got, r.Version)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(4): %v", err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 || info3.LastVersion != 6 {
		t.Fatalf("replay from checkpoint got %v (info %+v)", got, info3)
	}
	l3.Close()
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{})
	defer l.Close()
	w, err := l.BeginCheckpoint(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Relation("edge", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Row([]ast.Term{ast.Sym{Name: "a"}, ast.Sym{Name: "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Row([]ast.Term{ast.Sym{Name: "b"}, ast.Int{Value: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Relation("flag", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Row(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	v, path, ok := l.LatestCheckpoint()
	if !ok || v != 7 {
		t.Fatalf("LatestCheckpoint = %d,%v", v, ok)
	}
	var rels []CheckpointRelation
	rv, err := ReadCheckpoint(path, func(r CheckpointRelation) error {
		rels = append(rels, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if rv != 7 || len(rels) != 2 {
		t.Fatalf("version %d, %d relations", rv, len(rels))
	}
	if rels[0].Name != "edge" || rels[0].Arity != 2 || len(rels[0].Rows) != 2 {
		t.Fatalf("edge relation: %+v", rels[0])
	}
	if rels[1].Name != "flag" || rels[1].Arity != 0 || len(rels[1].Rows) != 1 {
		t.Fatalf("flag relation: %+v", rels[1])
	}
	if got := rels[0].Rows[1][1]; got != (ast.Int{Value: 9}) {
		t.Fatalf("row term = %v", got)
	}

	// A flipped byte anywhere must be caught by the trailer CRC.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01
	os.WriteFile(path, data, 0o644)
	if _, err := ReadCheckpoint(path, func(CheckpointRelation) error { return nil }); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("corrupt checkpoint error = %v, want ErrCorruptLog", err)
	}
}

func TestCheckpointTmpCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "checkpoint-00000000000000aa.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, _ := openReplayed(t, dir, Options{})
	defer l.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived Open: %v", err)
	}
	if _, _, ok := l.LatestCheckpoint(); ok {
		t.Fatalf("tmp file counted as a checkpoint")
	}
}

func TestDecodeRejectsOversizedDeclaredLength(t *testing.T) {
	// A header declaring a huge payload must fail cleanly without allocating.
	var hdr [headerSize]byte
	hdr[0] = recordFormat
	hdr[1] = KindCommit
	binary.LittleEndian.PutUint32(hdr[2:], maxRecordBytes+1)
	_, _, err := decodeRecord(hdr[:], 0, "")
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("err = %v", err)
	}
}

func TestSealOnEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openReplayed(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close on empty log: %v", err)
	}
	// No segment should have been created just to hold a seal.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 0 {
		t.Fatalf("empty log created segments: %v", segs)
	}
}
