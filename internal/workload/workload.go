// Package workload generates the synthetic databases used by the tests, the
// examples and the experiment harness.
//
// The paper evaluates its rewritings analytically on a handful of programs
// (ancestor, same generation, list reverse) without publishing data sets;
// this package provides the standard structures those analyses assume:
// chains, balanced trees, random graphs and cycles for the parenthood
// relation, layered up/flat/down data for the same-generation programs, and
// element lists for the list programs. Every generator is deterministic in
// its parameters (and seed), so experiments are reproducible.
package workload

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/database"
)

// node returns the symbolic constant naming the i-th node of a generated
// structure, with a prefix distinguishing node families.
func node(prefix string, i int) ast.Term { return ast.S(fmt.Sprintf("%s%d", prefix, i)) }

// ParentChain returns a database with a relation pred forming a simple chain
// n0 -> n1 -> ... -> n(length), plus the name of the first node. It is the
// workload behind the Section 1 motivation: the full ancestor relation is
// quadratic in the chain length while the ancestors of a single node are
// linear.
func ParentChain(pred string, length int) (*database.Store, ast.Term) {
	s := database.NewStore()
	for i := 0; i < length; i++ {
		s.MustAddFact(ast.NewAtom(pred, node("n", i), node("n", i+1)))
	}
	return s, node("n", 0)
}

// ParentTree returns a database with a relation pred forming a complete tree
// of the given branching factor and depth, edges pointing from each node to
// its children, plus the root node. Node 0 is the root.
func ParentTree(pred string, branching, depth int) (*database.Store, ast.Term) {
	s := database.NewStore()
	id := 0
	type level struct{ ids []int }
	cur := level{ids: []int{0}}
	for d := 0; d < depth; d++ {
		var next level
		for _, parent := range cur.ids {
			for b := 0; b < branching; b++ {
				id++
				s.MustAddFact(ast.NewAtom(pred, node("t", parent), node("t", id)))
				next.ids = append(next.ids, id)
			}
		}
		cur = next
	}
	return s, node("t", 0)
}

// ParentCycle returns a database whose pred relation forms a single directed
// cycle of the given length, plus one node on the cycle. Cyclic data is what
// defeats the counting strategies (Section 10).
func ParentCycle(pred string, length int) (*database.Store, ast.Term) {
	s := database.NewStore()
	for i := 0; i < length; i++ {
		s.MustAddFact(ast.NewAtom(pred, node("c", i), node("c", (i+1)%length)))
	}
	return s, node("c", 0)
}

// RandomGraph returns a database whose pred relation contains `edges`
// pseudo-random edges over `nodes` nodes, generated deterministically from
// the seed, plus one node (node 0).
func RandomGraph(pred string, nodes, edges, seed int) (*database.Store, ast.Term) {
	s := database.NewStore()
	state := int64(seed)*2654435761 + 97
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		v := state >> 17
		if v < 0 {
			v = -v
		}
		return int(v % int64(m))
	}
	for i := 0; i < edges; i++ {
		a := next(nodes)
		b := next(nodes)
		s.MustAddFact(ast.NewAtom(pred, node("v", a), node("v", b)))
	}
	return s, node("v", 0)
}

// SameGeneration describes a layered same-generation workload.
type SameGeneration struct {
	// Store holds the up, flat and down relations.
	Store *database.Store
	// Start is a leaf node to use as the bound query argument.
	Start ast.Term
	// Leaves is the number of leaf nodes per layer.
	Leaves int
	// Depth is the number of up/down layers.
	Depth int
}

// SameGenerationLayers builds the classic same-generation workload: `leaves`
// nodes per layer, `depth` layers connected by up edges (towards the top
// layer) and down edges (back towards the leaves), and flat edges forming a
// chain inside every layer. With cyclic=false the flat chains are open and
// the counting strategies terminate; with cyclic=true the chains wrap
// around, producing cyclic data.
func SameGenerationLayers(leaves, depth int, cyclic bool) *SameGeneration {
	s := database.NewStore()
	name := func(layer, i int) ast.Term { return ast.S(fmt.Sprintf("l%d_%d", layer, i)) }
	for layer := 0; layer < depth; layer++ {
		for i := 0; i < leaves; i++ {
			s.MustAddFact(ast.NewAtom("up", name(layer, i), name(layer+1, i)))
			s.MustAddFact(ast.NewAtom("down", name(layer+1, i), name(layer, i)))
		}
	}
	for layer := 0; layer <= depth; layer++ {
		for i := 0; i < leaves-1; i++ {
			s.MustAddFact(ast.NewAtom("flat", name(layer, i), name(layer, i+1)))
		}
		if cyclic && leaves > 1 {
			s.MustAddFact(ast.NewAtom("flat", name(layer, leaves-1), name(layer, 0)))
		}
	}
	return &SameGeneration{Store: s, Start: name(0, 0), Leaves: leaves, Depth: depth}
}

// NestedSameGeneration extends a same-generation workload with the b1/b2
// relations used by the nested same-generation program of Appendix A.1.
func NestedSameGeneration(leaves, depth int, cyclic bool) *SameGeneration {
	sg := SameGenerationLayers(leaves, depth, cyclic)
	for i := 0; i < leaves; i++ {
		sg.Store.MustAddFact(ast.NewAtom("b1", ast.S(fmt.Sprintf("l0_%d", i)), ast.S(fmt.Sprintf("m%d", i))))
		sg.Store.MustAddFact(ast.NewAtom("b2", ast.S(fmt.Sprintf("m%d", i)), ast.S(fmt.Sprintf("o%d", i))))
	}
	return sg
}

// ListWorkload describes a list-reverse workload: the elem facts needed by
// the repository's version of the Appendix list program and the ground list
// to reverse.
type ListWorkload struct {
	// Store holds the elem and emptylist relations.
	Store *database.Store
	// List is the ground list term of the requested length.
	List ast.Term
	// Reversed is the expected result of reversing it.
	Reversed ast.Term
	// Length is the number of elements.
	Length int
}

// List builds a list workload of the given length with elements e0..e(n-1).
func List(length int) *ListWorkload {
	s := database.NewStore()
	elems := make([]ast.Term, length)
	for i := 0; i < length; i++ {
		elems[i] = ast.S(fmt.Sprintf("e%d", i))
		s.MustAddFact(ast.NewAtom("elem", elems[i]))
	}
	s.MustAddFact(ast.NewAtom("emptylist", ast.S("nil")))
	reversed := make([]ast.Term, length)
	for i := range elems {
		reversed[i] = elems[length-1-i]
	}
	return &ListWorkload{
		Store:    s,
		List:     ast.List(elems...),
		Reversed: ast.List(reversed...),
		Length:   length,
	}
}
