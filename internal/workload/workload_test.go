package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestParentChain(t *testing.T) {
	s, start := ParentChain("par", 5)
	if s.FactCount("par") != 5 {
		t.Errorf("par facts = %d", s.FactCount("par"))
	}
	if !ast.Equal(start, ast.S("n0")) {
		t.Errorf("start = %s", start)
	}
	// Evaluating ancestor over the chain gives n(n+1)/2 pairs.
	prog := parser.MustParseProgram(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
	`)
	store, _, err := eval.SemiNaive(eval.Options{}).Evaluate(prog, s)
	if err != nil {
		t.Fatal(err)
	}
	if store.FactCount("anc") != 15 {
		t.Errorf("anc facts = %d, want 15", store.FactCount("anc"))
	}
}

func TestParentTree(t *testing.T) {
	s, root := ParentTree("par", 2, 3)
	// A binary tree of depth 3 has 2 + 4 + 8 = 14 edges.
	if s.FactCount("par") != 14 {
		t.Errorf("par facts = %d, want 14", s.FactCount("par"))
	}
	if !ast.Equal(root, ast.S("t0")) {
		t.Errorf("root = %s", root)
	}
	// Degenerate parameters.
	empty, _ := ParentTree("par", 3, 0)
	if empty.FactCount("par") != 0 {
		t.Error("zero-depth tree must have no edges")
	}
}

func TestParentCycleAndRandomGraph(t *testing.T) {
	s, start := ParentCycle("par", 4)
	if s.FactCount("par") != 4 || !ast.Equal(start, ast.S("c0")) {
		t.Errorf("cycle: %d facts, start %s", s.FactCount("par"), start)
	}
	g1, _ := RandomGraph("e", 10, 30, 7)
	g2, _ := RandomGraph("e", 10, 30, 7)
	g3, _ := RandomGraph("e", 10, 30, 8)
	if g1.FactCount("e") == 0 || g1.FactCount("e") > 30 {
		t.Errorf("random graph edge count = %d", g1.FactCount("e"))
	}
	if g1.String() != g2.String() {
		t.Error("RandomGraph must be deterministic in its seed")
	}
	if g1.String() == g3.String() {
		t.Error("different seeds should give different graphs (overwhelmingly likely)")
	}
}

func TestSameGenerationLayers(t *testing.T) {
	sg := SameGenerationLayers(4, 2, false)
	// up and down: leaves*depth each; flat: (leaves-1)*(depth+1).
	if sg.Store.FactCount("up") != 8 || sg.Store.FactCount("down") != 8 {
		t.Errorf("up/down = %d/%d", sg.Store.FactCount("up"), sg.Store.FactCount("down"))
	}
	if sg.Store.FactCount("flat") != 9 {
		t.Errorf("flat = %d, want 9", sg.Store.FactCount("flat"))
	}
	cyclic := SameGenerationLayers(4, 2, true)
	if cyclic.Store.FactCount("flat") != 12 {
		t.Errorf("cyclic flat = %d, want 12", cyclic.Store.FactCount("flat"))
	}
	// The same-generation program over the acyclic workload relates the
	// start leaf to the leaves to its right.
	prog := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).
	`)
	store, _, err := eval.SemiNaive(eval.Options{}).Evaluate(prog, sg.Store)
	if err != nil {
		t.Fatal(err)
	}
	answers := eval.Answers(store, "sg", ast.NewAtom("sg", sg.Start, ast.V("Y")))
	if len(answers) == 0 {
		t.Error("expected some same-generation answers from the start leaf")
	}
}

func TestNestedSameGeneration(t *testing.T) {
	sg := NestedSameGeneration(3, 2, false)
	if sg.Store.FactCount("b1") != 3 || sg.Store.FactCount("b2") != 3 {
		t.Errorf("b1/b2 = %d/%d", sg.Store.FactCount("b1"), sg.Store.FactCount("b2"))
	}
}

func TestListWorkload(t *testing.T) {
	l := List(3)
	if l.Length != 3 || l.Store.FactCount("elem") != 3 || l.Store.FactCount("emptylist") != 1 {
		t.Errorf("list workload wrong: %+v", l)
	}
	if l.List.String() != "[e0, e1, e2]" || l.Reversed.String() != "[e2, e1, e0]" {
		t.Errorf("list terms: %s / %s", l.List, l.Reversed)
	}
	empty := List(0)
	if empty.List.String() != "[]" || empty.Reversed.String() != "[]" {
		t.Errorf("empty list workload: %s / %s", empty.List, empty.Reversed)
	}
}

// TestQuickChainAncestorCount: property — for any chain length n in a small
// range, the ancestor relation over the chain has exactly n(n+1)/2 tuples.
func TestQuickChainAncestorCount(t *testing.T) {
	prog := parser.MustParseProgram(`
		anc(X, Y) :- par(X, Y).
		anc(X, Y) :- par(X, Z), anc(Z, Y).
	`)
	f := func(raw uint8) bool {
		n := int(raw%12) + 1
		s, _ := ParentChain("par", n)
		store, _, err := eval.SemiNaive(eval.Options{}).Evaluate(prog, s)
		if err != nil {
			return false
		}
		return store.FactCount("anc") == n*(n+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickTreeEdgeCount: property — a complete tree with branching b and
// depth d has b + b^2 + ... + b^d edges.
func TestQuickTreeEdgeCount(t *testing.T) {
	f := func(rb, rd uint8) bool {
		b := int(rb%3) + 1
		d := int(rd % 4)
		s, _ := ParentTree("par", b, d)
		want := 0
		pow := 1
		for i := 1; i <= d; i++ {
			pow *= b
			want += pow
		}
		return s.FactCount("par") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
