#!/bin/sh
# Serving-layer smoke: boot datalogd, fire a datalogbench burst at it,
# assert non-zero error-free throughput, and check the server shuts down
# cleanly on SIGTERM. `make loadtest` runs this locally; CI runs it as the
# serving smoke step.
set -eu

ADDR=${ADDR:-127.0.0.1:8357}
CLIENTS=${CLIENTS:-4}
DURATION=${DURATION:-3s}
CHAIN=${CHAIN:-100}

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/datalogd" ./cmd/datalogd
go build -o "$workdir/datalogbench" ./cmd/datalogbench

"$workdir/datalogd" -addr "$ADDR" -max-concurrent 64 -timeout 10s \
    > "$workdir/datalogd.log" 2>&1 &
server_pid=$!

"$workdir/datalogbench" -addr "http://$ADDR" -clients "$CLIENTS" \
    -duration "$DURATION" -chain "$CHAIN" -out "$workdir/bench_serving.json"

# datalogbench already fails when nothing completed; additionally refuse any
# failed request in the burst.
if grep -E '"errors": [1-9]' "$workdir/bench_serving.json"; then
    echo "loadtest: requests failed during the burst" >&2
    cat "$workdir/datalogd.log" >&2
    exit 1
fi
echo "loadtest: burst completed error-free:"
cat "$workdir/bench_serving.json"

kill -TERM "$server_pid"
wait "$server_pid"
if ! grep -q "shutdown clean" "$workdir/datalogd.log"; then
    echo "loadtest: server did not shut down cleanly:" >&2
    cat "$workdir/datalogd.log" >&2
    exit 1
fi
echo "loadtest: clean shutdown confirmed"
