#!/bin/sh
# Serving-layer smoke: boot datalogd, fire a datalogbench burst at it,
# assert non-zero error-free throughput, and check the server shuts down
# cleanly on SIGTERM. A second phase reruns the burst write-heavy against
# a WAL-backed server (-data-dir), then restarts it and asserts the
# committed version was recovered. `make loadtest` runs this locally; CI
# runs it as the serving smoke step.
set -eu

ADDR=${ADDR:-127.0.0.1:8357}
CLIENTS=${CLIENTS:-4}
DURATION=${DURATION:-3s}
CHAIN=${CHAIN:-100}

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/datalogd" ./cmd/datalogd
go build -o "$workdir/datalogbench" ./cmd/datalogbench

"$workdir/datalogd" -addr "$ADDR" -max-concurrent 64 -timeout 10s \
    > "$workdir/datalogd.log" 2>&1 &
server_pid=$!

"$workdir/datalogbench" -addr "http://$ADDR" -clients "$CLIENTS" \
    -duration "$DURATION" -chain "$CHAIN" -out "$workdir/bench_serving.json"

# datalogbench already fails when nothing completed; additionally refuse any
# failed request in the burst.
if grep -E '"errors": [1-9]' "$workdir/bench_serving.json"; then
    echo "loadtest: requests failed during the burst" >&2
    cat "$workdir/datalogd.log" >&2
    exit 1
fi
echo "loadtest: burst completed error-free:"
cat "$workdir/bench_serving.json"

kill -TERM "$server_pid"
wait "$server_pid"
if ! grep -q "shutdown clean" "$workdir/datalogd.log"; then
    echo "loadtest: server did not shut down cleanly:" >&2
    cat "$workdir/datalogd.log" >&2
    exit 1
fi
echo "loadtest: clean shutdown confirmed"

# Phase 2: the same burst, write-heavy, against a WAL-backed server; the
# SIGTERM path must checkpoint + seal, and a restart must recover the
# committed version instead of booting empty.
"$workdir/datalogd" -addr "$ADDR" -max-concurrent 64 -timeout 10s \
    -data-dir "$workdir/data" -fsync interval -checkpoint-every 500 \
    > "$workdir/datalogd_wal.log" 2>&1 &
server_pid=$!

"$workdir/datalogbench" -addr "http://$ADDR" -clients "$CLIENTS" \
    -duration "$DURATION" -chain "$CHAIN" -mix txn=80,query=20 -txn-batch 8 \
    -out "$workdir/bench_wal.json"
if grep -E '"errors": [1-9]' "$workdir/bench_wal.json"; then
    echo "loadtest: requests failed during the WAL burst" >&2
    cat "$workdir/datalogd_wal.log" >&2
    exit 1
fi

kill -TERM "$server_pid"
wait "$server_pid"
if ! grep -q "sealed " "$workdir/datalogd_wal.log" || \
   ! grep -q "shutdown clean" "$workdir/datalogd_wal.log"; then
    echo "loadtest: WAL-backed server did not seal + shut down cleanly:" >&2
    cat "$workdir/datalogd_wal.log" >&2
    exit 1
fi

"$workdir/datalogd" -addr "$ADDR" -data-dir "$workdir/data" \
    > "$workdir/datalogd_recover.log" 2>&1 &
server_pid=$!
i=0
until version=$(curl -sf "http://$ADDR/v1/stats" 2>/dev/null); do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "loadtest: recovered server never became healthy" >&2
        cat "$workdir/datalogd_recover.log" >&2
        exit 1
    fi
    sleep 0.2
done
if ! echo "$version" | grep -q '"recovered_version": *[1-9]'; then
    echo "loadtest: restart did not recover the committed version:" >&2
    echo "$version" >&2
    cat "$workdir/datalogd_recover.log" >&2
    exit 1
fi
kill -TERM "$server_pid"
wait "$server_pid"
echo "loadtest: WAL burst, sealed shutdown and recovery confirmed"
